(* Ablation studies for the design choices DESIGN.md calls out:

   - `counters`: the ISA counter primitive vs compiler unfolding vs the
     software counting-set automata the paper cites as motivation [21] —
     state/instruction counts side by side;
   - `vector width`: scan throughput as the number of compute units in
     the vector unit varies (the paper fixes 4);
   - `optimizer`: the mid-end AST optimiser's effect on code size and
     cycles;
   - `fusion`: the back-end operation fusion's effect (paper §5 merges a
     closing operator into the preceding base instruction). *)

module Compile = Alveare_compiler.Compile
module Dfa_offline = Alveare_engine.Dfa_offline
module Lower = Alveare_ir.Lower
module Emit = Alveare_backend.Emit
module Core = Alveare_arch.Core
module Nfa = Alveare_engine.Nfa
module Counting = Alveare_engine.Counting
module Benchmark = Alveare_workloads.Benchmark
module Microbench = Alveare_workloads.Microbench

(* ------------------------------------------------------------------ *)
(* Counter representations                                             *)
(* ------------------------------------------------------------------ *)

type counters_row = {
  pattern : string;
  nfa_states : int;        (* Thompson, bounded reps unfolded *)
  csa_states : int;        (* counting-set automaton *)
  csa_counted : int;       (* how many repetitions became counters *)
  alveare_instructions : int;
}

let counters_row pattern : counters_row =
  let ast = Alveare_frontend.Desugar.pattern_exn pattern in
  let c = Compile.compile_exn pattern in
  { pattern;
    nfa_states = Nfa.state_count (Nfa.of_ast_exn ast);
    csa_states = Counting.state_count (Counting.of_ast_exn ast);
    csa_counted = Counting.counted_states (Counting.of_ast_exn ast);
    alveare_instructions = Compile.code_size c }

let default_counter_patterns =
  List.map (fun (e : Microbench.entry) -> e.Microbench.pattern) Microbench.table2
  @ [ "[^\\r\\n]{8,60}"; "[0-9a-f]{32,62}"; "x[ab]{1,62}y"; "(ab){3,5}c" ]

let counters ?(patterns = default_counter_patterns) () =
  List.map counters_row patterns

let counters_table rows =
  Table.make
    ~title:"Ablation: counter representations (bounded repetition cost)"
    ~headers:
      [ "RE"; "NFA states (unfolded)"; "CsA states"; "counters";
        "ALVEARE instr." ]
    (List.map
       (fun r ->
          [ r.pattern; string_of_int r.nfa_states; string_of_int r.csa_states;
            string_of_int r.csa_counted;
            string_of_int r.alveare_instructions ])
       rows)
    ~notes:
      [ "Unfolding grows linearly with the bound; counting-set automata \
         [Turonova et al.] and the ISA counter primitive stay constant — \
         the motivation in the paper's s1." ]

(* ------------------------------------------------------------------ *)
(* Shared suite sampling                                               *)
(* ------------------------------------------------------------------ *)

type study_scale = {
  n_patterns : int;
  sample_bytes : int;
  seed : int;
}

let default_study_scale = { n_patterns = 16; sample_bytes = 24 * 1024; seed = 42 }

let suite_sample scale kind =
  let spec =
    { (Benchmark.quick_spec ~seed:scale.seed kind) with
      Benchmark.n_patterns = scale.n_patterns }
  in
  let suite = Benchmark.load spec in
  let stream = suite.Benchmark.stream.Alveare_workloads.Streams.data in
  (suite.Benchmark.patterns,
   String.sub stream 0 (min scale.sample_bytes (String.length stream)))

(* ------------------------------------------------------------------ *)
(* Fabric embedding vs instruction memory                              *)
(* ------------------------------------------------------------------ *)

(* The logic-embedding related work (Grapefruit-style FPGA automata [17],
   in-memory automata [5,19]) compiles each rule set into the fabric;
   ALVEARE compiles it into a reloadable instruction memory. Compare the
   per-rule resource footprint and what a rule-set change costs. *)
type fabric_row = {
  fabric_kind : Benchmark.kind;
  avg_nfa_ffs : float;
  avg_nfa_luts : float;
  avg_min_dfa_states : float;   (* rules whose DFA fit the cap *)
  dfa_overflows : int;          (* rules exceeding the subset cap *)
  avg_instructions : float;
  avg_binary_bits : float;      (* instructions x 43 *)
}

let fabric ?(scale = default_study_scale) () : fabric_row list =
  List.map
    (fun kind ->
       let patterns, _ = suite_sample scale kind in
       let rows =
         List.filter_map
           (fun p ->
              match Compile.compile p with
              | Error _ -> None
              | Ok c ->
                let nfa = Nfa.of_ast_exn c.Compile.ast in
                let dfa_states =
                  match Dfa_offline.determinize ~max_states:2048 nfa with
                  | Ok d -> Some (Dfa_offline.minimize d).Dfa_offline.n_states
                  | Error _ -> None
                in
                let cost =
                  Dfa_offline.fabric_cost ~nfa
                    { Dfa_offline.n_states = 1; n_symbols = 1;
                      symbol_of_byte = Array.make 256 0;
                      transitions = [| 0 |]; accepting = [| false |];
                      start = 0 }
                in
                Some (cost.Dfa_offline.nfa_ffs, cost.Dfa_offline.nfa_luts,
                      dfa_states, Compile.code_size c))
           patterns
       in
       let n = float_of_int (max 1 (List.length rows)) in
       let favg f = List.fold_left (fun acc r -> acc +. f r) 0.0 rows /. n in
       let fitted =
         List.filter_map (fun (_, _, d, _) -> d) rows
       in
       let overflow = List.length rows - List.length fitted in
       { fabric_kind = kind;
         avg_nfa_ffs = favg (fun (ff, _, _, _) -> float_of_int ff);
         avg_nfa_luts = favg (fun (_, l, _, _) -> float_of_int l);
         avg_min_dfa_states =
           (match fitted with
            | [] -> 0.0
            | xs ->
              float_of_int (List.fold_left ( + ) 0 xs)
              /. float_of_int (List.length xs));
         dfa_overflows = overflow;
         avg_instructions = favg (fun (_, _, _, i) -> float_of_int i);
         avg_binary_bits = favg (fun (_, _, _, i) -> float_of_int (i * 43)) })
    Benchmark.all_kinds

let fabric_table rows =
  Table.make
    ~title:"Ablation: logic embedding vs instruction memory (avg per rule)"
    ~headers:
      [ "Benchmark"; "NFA FFs"; "NFA LUTs"; "min-DFA states"; "DFA overflow";
        "ALVEARE instr."; "binary bits" ]
    (List.map
       (fun r ->
          [ Benchmark.kind_name r.fabric_kind;
            Printf.sprintf "%.0f" r.avg_nfa_ffs;
            Printf.sprintf "%.0f" r.avg_nfa_luts;
            Printf.sprintf "%.0f" r.avg_min_dfa_states;
            string_of_int r.dfa_overflows;
            Printf.sprintf "%.1f" r.avg_instructions;
            Printf.sprintf "%.0f" r.avg_binary_bits ])
       rows)
    ~notes:
      [ "Fabric approaches pay FF/LUT per automaton state and a full \
place-and-route to change rules; ALVEARE pays 43 bits of BRAM per \
instruction and reloads at memcpy speed (the paper's flexibility \
argument, s1/s2).";
        "DFA overflow counts rules whose subset construction exceeded 2048 \
states (counting products) - unusable for table-based embedding." ]

(* ------------------------------------------------------------------ *)
(* Vector width sweep                                                  *)
(* ------------------------------------------------------------------ *)

type width_row = {
  width_kind : Benchmark.kind;
  cycles_per_width : (int * float) list; (* width -> avg cycles/byte *)
}

let vector_width ?(widths = [ 1; 2; 4; 8 ]) ?(scale = default_study_scale) ()
  : width_row list =
  List.map
    (fun kind ->
       let patterns, sample = suite_sample scale kind in
       let programs =
         List.filter_map
           (fun p -> Result.to_option (Compile.compile p))
           patterns
       in
       let avg_cycles width =
         let config = { Core.default_config with Core.compute_units = width } in
         let total =
           List.fold_left
             (fun acc c ->
                let stats = Core.fresh_stats () in
                ignore
                  (Core.find_all ~config ~stats ~plan:c.Compile.plan
                     c.Compile.program sample);
                acc + stats.Core.cycles)
             0 programs
         in
         float_of_int total
         /. float_of_int (List.length programs * String.length sample)
       in
       { width_kind = kind;
         cycles_per_width = List.map (fun w -> (w, avg_cycles w)) widths })
    Benchmark.all_kinds

let vector_width_table rows =
  let widths = List.map fst (List.hd rows).cycles_per_width in
  Table.make ~title:"Ablation: vector-unit width (avg cycles/byte, 1 core)"
    ~headers:
      ("Benchmark"
       :: List.map (fun w -> Printf.sprintf "%d CU" w) widths
       @ [ "4CU speedup vs 1CU" ])
    (List.map
       (fun r ->
          let at w = List.assoc w r.cycles_per_width in
          Benchmark.kind_name r.width_kind
          :: List.map (fun w -> Printf.sprintf "%.3f" (at w)) widths
          @ [ Table.fmt_ratio (at 1 /. at 4) ])
       rows)
    ~notes:
      [ "The vector unit prunes candidate offsets [compute_units] at a \
         time (paper Fig. 3 (C): four CUs, seven-char window)." ]

(* ------------------------------------------------------------------ *)
(* Optimiser and fusion                                                *)
(* ------------------------------------------------------------------ *)

type toggle_row = {
  toggle_kind : Benchmark.kind;
  code_off : float;   (* avg code size with the feature off *)
  code_on : float;
  cycles_off : float; (* avg cycles/byte with the feature off *)
  cycles_on : float;
}

let toggle_study ~compile_variant ?(scale = default_study_scale) () =
  List.map
    (fun kind ->
       let patterns, sample = suite_sample scale kind in
       let measure enabled =
         let results =
           List.filter_map (fun p -> compile_variant ~enabled p) patterns
         in
         let n = max 1 (List.length results) in
         let code =
           List.fold_left
             (fun acc p -> acc + Alveare_isa.Program.code_size p)
             0 results
         in
         let cycles =
           List.fold_left
             (fun acc p ->
                let stats = Core.fresh_stats () in
                ignore (Core.find_all ~stats p sample);
                acc + stats.Core.cycles)
             0 results
         in
         (float_of_int code /. float_of_int n,
          float_of_int cycles /. float_of_int (n * String.length sample))
       in
       let code_off, cycles_off = measure false in
       let code_on, cycles_on = measure true in
       { toggle_kind = kind; code_off; code_on; cycles_off; cycles_on })
    Benchmark.all_kinds

let optimizer_study ?scale () =
  let compile_variant ~enabled pattern =
    let options = { Lower.default_options with Lower.optimize = enabled } in
    match Compile.compile ~options pattern with
    | Ok c -> Some c.Compile.program
    | Error _ -> None
  in
  toggle_study ~compile_variant ?scale ()

let fusion_study ?scale () =
  let compile_variant ~enabled pattern =
    match Lower.lower_pattern pattern with
    | Error _ -> None
    | Ok ir -> Result.to_option (Emit.program_of_ir ~fuse:enabled ir)
  in
  toggle_study ~compile_variant ?scale ()

let toggle_table ~title ~feature rows =
  Table.make ~title
    ~headers:
      [ "Benchmark";
        Printf.sprintf "code (%s off)" feature;
        Printf.sprintf "code (%s on)" feature;
        "code saved";
        Printf.sprintf "cyc/B (%s off)" feature;
        Printf.sprintf "cyc/B (%s on)" feature;
        "cycles saved" ]
    (List.map
       (fun r ->
          [ Benchmark.kind_name r.toggle_kind;
            Printf.sprintf "%.1f" r.code_off;
            Printf.sprintf "%.1f" r.code_on;
            Printf.sprintf "%.1f%%" (100.0 *. (1.0 -. (r.code_on /. r.code_off)));
            Printf.sprintf "%.3f" r.cycles_off;
            Printf.sprintf "%.3f" r.cycles_on;
            Printf.sprintf "%.1f%%"
              (100.0 *. (1.0 -. (r.cycles_on /. r.cycles_off))) ])
       rows)

let optimizer_table rows =
  toggle_table
    ~title:"Ablation: mid-end AST optimiser (avg per RE)"
    ~feature:"opt" rows

let fusion_table rows =
  toggle_table
    ~title:"Ablation: back-end operation fusion (avg per RE, paper s5)"
    ~feature:"fusion" rows
