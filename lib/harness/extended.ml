(* Extended studies beyond the paper's evaluation:

   - `energy breakdown`: where each benchmark's energy goes across the
     core's components (static / datapath / control / stack / memory);
   - `csa row`: a software counting-set-automata engine on the A53
     (Turoňová et al., the paper's cited software SotA for counters)
     as an extra comparison row next to RE2;
   - `capacity`: how many compiled rules fit one core's instruction
     memory, and what swapping a rule set costs — the flexibility
     argument made quantitative. *)

module Compile = Alveare_compiler.Compile
module Core = Alveare_arch.Core
module Counting = Alveare_engine.Counting
module Benchmark = Alveare_workloads.Benchmark
module Breakdown = Alveare_platform.Energy_breakdown
module Calibration = Alveare_platform.Calibration

(* ------------------------------------------------------------------ *)
(* Energy breakdown                                                    *)
(* ------------------------------------------------------------------ *)

type energy_row = {
  energy_kind : Benchmark.kind;
  breakdown : Breakdown.breakdown;
}

let energy_breakdown ?(scale = Ablation.default_study_scale) ()
  : energy_row list =
  List.map
    (fun kind ->
       let patterns, sample = Ablation.suite_sample scale kind in
       let total =
         List.fold_left
           (fun acc p ->
              match Compile.compile p with
              | Error _ -> acc
              | Ok c ->
                let stats = Core.fresh_stats () in
                ignore
                  (Core.find_all ~stats ~plan:c.Compile.plan
                     c.Compile.program sample);
                Breakdown.add acc (Breakdown.of_stats stats))
           Breakdown.zero patterns
       in
       { energy_kind = kind; breakdown = total })
    Benchmark.all_kinds

let energy_breakdown_table rows =
  Table.make
    ~title:"Extended: ALVEARE energy breakdown (share of total, 1 core)"
    ~headers:
      [ "Benchmark"; "static"; "datapath"; "control"; "stack"; "memory" ]
    (List.map
       (fun r ->
          let b = r.breakdown in
          let pct v = Printf.sprintf "%.1f%%" (100.0 *. Breakdown.share v b) in
          [ Benchmark.kind_name r.energy_kind;
            pct b.Breakdown.static_j; pct b.Breakdown.datapath_j;
            pct b.Breakdown.control_j; pct b.Breakdown.stack_j;
            pct b.Breakdown.memory_j ])
       rows)
    ~notes:
      [ "Scan-bound suites (PowerEN) spend in the vector datapath; \
         speculation-heavy suites shift energy into the controller and \
         stack. Shares re-sum the paper's board budget by construction." ]

(* ------------------------------------------------------------------ *)
(* Counting-set automata on the A53                                    *)
(* ------------------------------------------------------------------ *)

let csa_cycles_per_step = 14.0
(* Calibrated: a CsA step is a Pike-VM step plus counter-set interval
   work; Turoňová et al. report throughput within ~2x of plain NFA
   simulation on counter-light patterns and far better on counter-heavy
   ones (no unfolding). *)

type csa_row = {
  csa_kind : Benchmark.kind;
  csa_seconds : float;       (* avg per RE, full stream *)
  re2_seconds : float;
  alveare1_seconds : float;
}

let csa_comparison ?(scale = Ablation.default_study_scale) () : csa_row list =
  List.map
    (fun kind ->
       let patterns, sample = Ablation.suite_sample scale kind in
       let full_bytes = 1 lsl 20 in
       let k =
         float_of_int full_bytes /. float_of_int (String.length sample)
       in
       let times =
         List.filter_map
           (fun p ->
              match Compile.compile p with
              | Error _ -> None
              | Ok c ->
                (* CsA on A53: scan the whole sample with
                   rescan-after-hit, like the other engines *)
                let csa = Counting.of_ast_exn c.Compile.ast in
                let cstats = Counting.fresh_stats () in
                let rec drain from =
                  if from <= String.length sample then
                    match Counting.search_end ~stats:cstats csa ~from sample with
                    | Some stop -> drain (max (stop + 1) (from + 1))
                    | None -> ()
                in
                drain 0;
                let csa_steps = cstats.Counting.steps in
                let csa_s =
                  k *. float_of_int csa_steps *. csa_cycles_per_step
                  /. Calibration.a53_clock_hz
                in
                (* RE2 on A53 *)
                let re2 =
                  Alveare_platform.A53_re2.run ~full_bytes c.Compile.ast sample
                in
                (* ALVEARE 1-core *)
                let a1 =
                  Alveare_platform.Alveare_fpga.run ~full_bytes ~cores:1
                    c.Compile.program sample
                in
                Some
                  ( csa_s,
                    re2.Alveare_platform.A53_re2.run
                      .Alveare_platform.Measure.seconds,
                    a1.Alveare_platform.Alveare_fpga.run
                      .Alveare_platform.Measure.seconds ))
           patterns
       in
       let n = float_of_int (max 1 (List.length times)) in
       let avg f = List.fold_left (fun acc t -> acc +. f t) 0.0 times /. n in
       { csa_kind = kind;
         csa_seconds = avg (fun (a, _, _) -> a);
         re2_seconds = avg (fun (_, b, _) -> b);
         alveare1_seconds = avg (fun (_, _, c) -> c) })
    Benchmark.all_kinds

let csa_table rows =
  Table.make
    ~title:"Extended: counting-set automata (software SotA) on the A53"
    ~headers:
      [ "Benchmark"; "CsA (A53)"; "RE2 (A53)"; "ALVEARE x1"; "ALV x1 vs CsA" ]
    (List.map
       (fun r ->
          [ Benchmark.kind_name r.csa_kind;
            Table.fmt_seconds r.csa_seconds;
            Table.fmt_seconds r.re2_seconds;
            Table.fmt_seconds r.alveare1_seconds;
            Table.fmt_ratio (r.csa_seconds /. r.alveare1_seconds) ])
       rows)
    ~notes:
      [ "CsA [Turonova et al., cited by the paper] avoids counter \
         unfolding in software, narrowing RE2's gap on counted rules — \
         the hardware counter still wins on the scan itself." ]

(* ------------------------------------------------------------------ *)
(* Instruction-memory capacity                                         *)
(* ------------------------------------------------------------------ *)

let instruction_memory_slots = 1024
(* One core's instruction BRAM: 1024 x 43-bit words (~44 Kb, a handful
   of 36Kb blocks out of the per-core 6.71% budget). *)

type capacity_row = {
  cap_kind : Benchmark.kind;
  avg_instructions : float;
  rules_per_memory : int;
  swap_us : float;  (* reload one rule's binary + dispatch, microseconds *)
}

let capacity ?(scale = Ablation.default_study_scale) () : capacity_row list =
  List.map
    (fun kind ->
       let patterns, _ = Ablation.suite_sample scale kind in
       let sizes =
         List.filter_map
           (fun p ->
              match Compile.compile p with
              | Ok c -> Some (Alveare_isa.Program.length c.Compile.program)
              | Error _ -> None)
           patterns
       in
       let n = max 1 (List.length sizes) in
       let avg =
         float_of_int (List.fold_left ( + ) 0 sizes) /. float_of_int n
       in
       let swap_s =
         (avg *. 8.0 (* container words are 8 bytes *)
          /. (Calibration.alveare_load_bytes_per_cycle
              *. Calibration.alveare_clock_hz))
         +. Calibration.alveare_job_overhead_s
       in
       { cap_kind = kind;
         avg_instructions = avg;
         rules_per_memory = int_of_float (float_of_int instruction_memory_slots /. avg);
         swap_us = swap_s *. 1e6 })
    Benchmark.all_kinds

let capacity_table rows =
  Table.make
    ~title:"Extended: instruction-memory capacity and rule-swap cost"
    ~headers:
      [ "Benchmark"; "avg instr./rule"; "rules per 1K-word memory";
        "swap cost" ]
    (List.map
       (fun r ->
          [ Benchmark.kind_name r.cap_kind;
            Printf.sprintf "%.1f" r.avg_instructions;
            string_of_int r.rules_per_memory;
            Printf.sprintf "%.0f us" r.swap_us ])
       rows)
    ~notes:
      [ "Changing the matched RE is a microsecond-scale memory write \
         (dominated by the PYNQ dispatch), against minutes-to-hours of \
         place-and-route for fabric-embedded automata — the paper's \
         run-time flexibility claim, quantified." ]
