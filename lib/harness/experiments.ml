(* Experiment drivers regenerating every table and figure of the paper's
   evaluation (§7): Table 2 (ISA primitive reductions), Figure 4
   (execution time), Figure 5 (energy efficiency), plus the §7.2
   multi-core scaling and FPGA-resource observations. Each driver returns
   structured results (asserted by the test suite) and renders the same
   rows/series the paper reports. *)

module Compile = Alveare_compiler.Compile
module Lower = Alveare_ir.Lower
module Benchmark = Alveare_workloads.Benchmark
module Microbench = Alveare_workloads.Microbench
module Fpga = Alveare_platform.Alveare_fpga
module A53 = Alveare_platform.A53_re2
module Dpu = Alveare_platform.Dpu
module Gpu = Alveare_platform.Gpu
module Energy = Alveare_platform.Energy
module Area = Alveare_platform.Area

(* ---------------------------------------------------------------- *)
(* Table 2: advanced ISA primitives vs minimal representation.       *)
(* ---------------------------------------------------------------- *)

type table2_row = {
  pattern : string;
  minimal : int;        (* instruction count, minimal representation *)
  advanced : int;       (* instruction count, advanced primitives *)
  reduction : float;    (* = cycle reduction: 1 instruction = 1 cycle *)
  paper_reduction : float;
}

let table2 () : table2_row list =
  List.map
    (fun (e : Microbench.entry) ->
       let count options =
         match Lower.lower_pattern ~options e.Microbench.pattern with
         | Ok ir -> Alveare_ir.Ir.instruction_count ir
         | Error msg ->
           invalid_arg ("Experiments.table2: " ^ e.Microbench.pattern ^ ": " ^ msg)
       in
       let minimal = count Lower.minimal_options in
       let advanced = count Lower.default_options in
       { pattern = e.Microbench.pattern;
         minimal;
         advanced;
         reduction = float_of_int minimal /. float_of_int advanced;
         paper_reduction = e.Microbench.paper_reduction })
    Microbench.table2

let table2_table rows =
  Table.make ~title:"Table 2: ALVEARE ISA advanced primitives improvements"
    ~headers:
      [ "RE"; "Minimal instr."; "Advanced instr."; "Code/cycle reduction";
        "Paper" ]
    (List.map
       (fun r ->
          [ r.pattern; string_of_int r.minimal; string_of_int r.advanced;
            Table.fmt_ratio r.reduction; Table.fmt_ratio r.paper_reduction ])
       rows)
    ~notes:
      [ "Code size excludes the EoR terminator; one instruction = one cycle \
         (RISC premise, paper \xc2\xa77.1)." ]

(* ---------------------------------------------------------------- *)
(* Figures 4 and 5: per-benchmark engine comparison.                  *)
(* ---------------------------------------------------------------- *)

type engine =
  | E_re2_a53
  | E_dpu
  | E_gpu_infant
  | E_gpu_obat
  | E_alveare of int

let engine_name = function
  | E_re2_a53 -> "RE2 (A53)"
  | E_dpu -> "BF-2 DPU"
  | E_gpu_infant -> "iNFAnt (V100)"
  | E_gpu_obat -> "OBAT (V100)"
  | E_alveare n -> Printf.sprintf "ALVEARE x%d" n

let engine_platform = function
  | E_re2_a53 -> Energy.A53_re2
  | E_dpu -> Energy.Dpu
  | E_gpu_infant | E_gpu_obat -> Energy.Gpu
  | E_alveare n -> Energy.Alveare n

let figure_engines =
  [ E_re2_a53; E_dpu; E_gpu_infant; E_gpu_obat; E_alveare 1; E_alveare 10 ]

(* Evaluation scale: which slice of the stream each engine executes.
   Every engine streams linearly, so times extrapolate to [full_bytes];
   the GPU Pike VM is the slowest simulation and gets a smaller sample. *)
type scale = {
  suite_spec : Benchmark.kind -> Benchmark.spec;
  sim_sample_bytes : int;   (* ALVEARE / RE2 / DPU execution sample *)
  gpu_sample_bytes : int;
}

let quick_scale ?(seed = 42) () =
  { suite_spec = (fun kind -> Benchmark.quick_spec ~seed kind);
    sim_sample_bytes = 24 * 1024;
    gpu_sample_bytes = 6 * 1024 }

let full_scale ?(seed = 42) () =
  { suite_spec = (fun kind -> Benchmark.paper_spec ~seed kind);
    sim_sample_bytes = 256 * 1024;
    gpu_sample_bytes = 16 * 1024 }

type engine_result = {
  engine : engine;
  avg_seconds : float;      (* per-RE average over the full stream *)
  avg_efficiency : float;   (* 1 / (time * power), paper formula *)
  total_matches : int;      (* matches observed on the executed samples *)
}

type benchmark_result = {
  benchmark : Benchmark.kind;
  n_patterns : int;
  stream_bytes : int;
  engines : engine_result list;
}

let seconds_of_engine ~scale ~stream engine (c : Compile.compiled) =
  let full_bytes = String.length stream in
  let sample n = String.sub stream 0 (min n full_bytes) in
  match engine with
  | E_re2_a53 ->
    let o = A53.run ~full_bytes c.Compile.ast (sample scale.sim_sample_bytes) in
    (o.A53.run.Alveare_platform.Measure.seconds,
     o.A53.run.Alveare_platform.Measure.match_count)
  | E_dpu ->
    let o = Dpu.run ~full_bytes c.Compile.ast (sample scale.sim_sample_bytes) in
    (o.Dpu.run.Alveare_platform.Measure.seconds,
     o.Dpu.run.Alveare_platform.Measure.match_count)
  | E_gpu_infant | E_gpu_obat ->
    let alg = if engine = E_gpu_infant then Gpu.Infant else Gpu.Obat in
    let o = Gpu.run ~full_bytes alg c.Compile.ast (sample scale.gpu_sample_bytes) in
    (o.Gpu.run.Alveare_platform.Measure.seconds,
     o.Gpu.run.Alveare_platform.Measure.match_count)
  | E_alveare cores ->
    let overlap = Alveare_multicore.Multicore.overlap_for_ast c.Compile.ast in
    let o =
      Fpga.run ~full_bytes ~cores ~overlap c.Compile.program
        (sample scale.sim_sample_bytes)
    in
    (o.Fpga.run.Alveare_platform.Measure.seconds,
     o.Fpga.run.Alveare_platform.Measure.match_count)

let evaluate_benchmark ?(workers = 1) ?(engines = figure_engines) ~scale kind
  : benchmark_result =
  let suite = Benchmark.load (scale.suite_spec kind) in
  let stream = suite.Benchmark.stream.Alveare_workloads.Streams.data in
  let compiled =
    List.filter_map
      (fun p -> Result.to_option (Compile.cached p))
      suite.Benchmark.patterns
  in
  let n = List.length compiled in
  (* Every (engine, pattern) cell is an independent simulation, so the
     whole suite fans out over one flat task array — finer grain than
     per-engine tasks, which would leave the pool idle behind the
     slowest engine. Per-engine totals are then folded in the original
     pattern order, so the float sums (and hence every table row) are
     byte-identical to the sequential sweep. *)
  let compiled = Array.of_list compiled in
  let engines = Array.of_list engines in
  let cells =
    Alveare_exec.Pool.init ~workers (Array.length engines * n) (fun i ->
        let engine = engines.(i / n) in
        seconds_of_engine ~scale ~stream engine compiled.(i mod n))
  in
  let per_engine e_idx =
    let engine = engines.(e_idx) in
    let total_seconds = ref 0.0 and total_matches = ref 0 in
    for p = 0 to n - 1 do
      let s, m = cells.((e_idx * n) + p) in
      total_seconds := !total_seconds +. s;
      total_matches := !total_matches + m
    done;
    let avg_seconds = !total_seconds /. float_of_int (max 1 n) in
    { engine;
      avg_seconds;
      avg_efficiency =
        Energy.efficiency ~seconds:avg_seconds (engine_platform engine);
      total_matches = !total_matches }
  in
  { benchmark = kind;
    n_patterns = n;
    stream_bytes = String.length stream;
    engines = List.init (Array.length engines) per_engine }

let evaluate ?workers ?engines ~scale () : benchmark_result list =
  List.map (evaluate_benchmark ?workers ?engines ~scale) Benchmark.all_kinds

let result_for results kind engine =
  let b = List.find (fun r -> r.benchmark = kind) results in
  List.find (fun e -> e.engine = engine) b.engines

let speedup results kind ~of_:fast ~over:slow =
  let f = result_for results kind fast and s = result_for results kind slow in
  s.avg_seconds /. f.avg_seconds

(* Figure 4: average execution time per benchmark (log-scale plot in the
   paper; here one row per engine with ratios vs the 10-core). *)
let figure4_table (results : benchmark_result list) =
  let headers =
    "Engine"
    :: List.concat_map
         (fun r -> [ Benchmark.kind_name r.benchmark; "vs ALV x10" ])
         results
  in
  let rows =
    List.map
      (fun engine ->
         engine_name engine
         :: List.concat_map
              (fun r ->
                 let e = List.find (fun e -> e.engine = engine) r.engines in
                 let alv10 =
                   List.find (fun e -> e.engine = E_alveare 10) r.engines
                 in
                 [ Table.fmt_seconds e.avg_seconds;
                   Table.fmt_ratio (e.avg_seconds /. alv10.avg_seconds) ])
              results)
      (List.map (fun e -> e.engine) (List.hd results).engines)
  in
  Table.make ~title:"Figure 4: execution time (avg per RE, lower is better)"
    ~headers rows
    ~notes:
      [ "Paper shape targets: ALVEARE x10 beats RE2 7.8-34.7x, DPU up to \
         15.1x, GPUs by >=2 orders of magnitude (356x min over OBAT on \
         Protomata)." ]

(* Figure 5: energy efficiency 1/(time*power), higher is better. *)
let figure5_table (results : benchmark_result list) =
  let headers =
    "Engine"
    :: List.concat_map
         (fun r -> [ Benchmark.kind_name r.benchmark; "vs ALV x10" ])
         results
  in
  let rows =
    List.map
      (fun engine ->
         engine_name engine
         :: List.concat_map
              (fun r ->
                 let e = List.find (fun e -> e.engine = engine) r.engines in
                 let alv10 =
                   List.find (fun e -> e.engine = E_alveare 10) r.engines
                 in
                 [ Table.fmt_sci e.avg_efficiency;
                   Table.fmt_ratio (alv10.avg_efficiency /. e.avg_efficiency) ])
              results)
      (List.map (fun e -> e.engine) (List.hd results).engines)
  in
  Table.make
    ~title:"Figure 5: energy efficiency 1/(s*W) (avg per RE, higher is better)"
    ~headers rows
    ~notes:
      [ "Paper shape targets: x10 gains up to 29x vs A53, 57.9x vs DPU, four \
         orders of magnitude vs GPU (single core)." ]

(* ---------------------------------------------------------------- *)
(* Multi-core scaling (paper \xc2\xa77.2: 3x PowerEN, ~7x real-life).      *)
(* ---------------------------------------------------------------- *)

type scaling_point = {
  cores : int;
  avg_seconds_sc : float;
  speedup_vs_1 : float;
}

type scaling_result = {
  benchmark_sc : Benchmark.kind;
  points : scaling_point list;
}

let scaling ?workers ?(core_counts = [ 1; 2; 4; 6; 8; 10 ]) ~scale kind
  : scaling_result =
  let engines = List.map (fun c -> E_alveare c) core_counts in
  let r = evaluate_benchmark ?workers ~engines ~scale kind in
  let time c =
    (List.find (fun e -> e.engine = E_alveare c) r.engines).avg_seconds
  in
  let t1 = time (List.hd core_counts) in
  { benchmark_sc = kind;
    points =
      List.map
        (fun c ->
           { cores = c; avg_seconds_sc = time c; speedup_vs_1 = t1 /. time c })
        core_counts }

let scaling_table (results : scaling_result list) =
  let core_counts = List.map (fun p -> p.cores) (List.hd results).points in
  Table.make ~title:"Multi-core scaling (speedup vs 1 core)"
    ~headers:
      ("Benchmark" :: List.map (fun c -> Printf.sprintf "%d cores" c) core_counts)
    (List.map
       (fun r ->
          Benchmark.kind_name r.benchmark_sc
          :: List.map (fun p -> Table.fmt_ratio p.speedup_vs_1) r.points)
       results)
    ~notes:
      [ "Paper \xc2\xa77.2: ~3x on synthetic PowerEN (PYNQ dispatch bound), ~7x \
         on Protomata and Snort at ten cores." ]

(* ---------------------------------------------------------------- *)
(* FPGA resources (paper \xc2\xa77.2).                                     *)
(* ---------------------------------------------------------------- *)

let area_table () =
  let sweep = Area.sweep 11 in
  Table.make ~title:"FPGA resource scaling (XCZU3EG, 300 MHz)"
    ~headers:[ "Cores"; "BRAM %"; "LUT %"; "Status" ]
    (List.map
       (fun (u : Area.utilization) ->
          [ string_of_int u.Area.cores;
            Printf.sprintf "%.2f" u.Area.bram_pct;
            Printf.sprintf "%.2f" u.Area.lut_pct;
            (if not u.Area.fits then "does not fit"
             else if not u.Area.closes_timing then "fails timing"
             else "ok") ])
       sweep)
    ~notes:
      [ Printf.sprintf
          "Paper \xc2\xa77.2: BRAM 6.71%%->67.13%% linear, LUT 11.39%%->84.65%% \
           sublinear; maximum %d cores."
          (Area.max_cores ()) ]
