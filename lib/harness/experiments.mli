(** Experiment drivers regenerating every table and figure of the paper's
    evaluation (§7): Table 2, Figure 4 (execution time), Figure 5 (energy
    efficiency), the multi-core scaling sweep and the FPGA resource model.
    Each driver returns structured results (asserted by the test suite)
    and renders the same rows/series the paper reports. *)

(** {2 Table 2 — ISA advanced primitives} *)

type table2_row = {
  pattern : string;
  minimal : int;
  advanced : int;
  reduction : float;   (** = cycle reduction (1 instruction = 1 cycle) *)
  paper_reduction : float;
}

val table2 : unit -> table2_row list
val table2_table : table2_row list -> Table.t

(** {2 Figures 4 and 5 — engine comparison} *)

type engine =
  | E_re2_a53
  | E_dpu
  | E_gpu_infant
  | E_gpu_obat
  | E_alveare of int  (** core count *)

val engine_name : engine -> string
val engine_platform : engine -> Alveare_platform.Energy.platform

val figure_engines : engine list
(** The paper's comparison set: RE2, DPU, both GPUs, ALVEARE ×1 and ×10. *)

(** Which slice of the stream each engine executes; times extrapolate to
    the suite's full stream. *)
type scale = {
  suite_spec : Alveare_workloads.Benchmark.kind -> Alveare_workloads.Benchmark.spec;
  sim_sample_bytes : int;
  gpu_sample_bytes : int;
}

val quick_scale : ?seed:int -> unit -> scale
val full_scale : ?seed:int -> unit -> scale
(** Paper scale: 200 REs per suite, larger samples. *)

type engine_result = {
  engine : engine;
  avg_seconds : float;
  avg_efficiency : float;  (** 1 / (time × power), the paper's formula *)
  total_matches : int;
}

type benchmark_result = {
  benchmark : Alveare_workloads.Benchmark.kind;
  n_patterns : int;
  stream_bytes : int;
  engines : engine_result list;
}

val evaluate_benchmark :
  ?workers:int -> ?engines:engine list -> scale:scale ->
  Alveare_workloads.Benchmark.kind -> benchmark_result
(** [workers] fans the independent (engine, pattern) cells out over host
    domains ({!Alveare_exec.Pool}); per-engine totals are folded in the
    original pattern order, so results are byte-identical to the
    sequential sweep for any value. Patterns compile through the shared
    {!Alveare_compiler.Compile.default_cache}. *)

val evaluate :
  ?workers:int -> ?engines:engine list -> scale:scale -> unit ->
  benchmark_result list
(** All three suites. *)

val result_for :
  benchmark_result list -> Alveare_workloads.Benchmark.kind -> engine ->
  engine_result

val speedup :
  benchmark_result list -> Alveare_workloads.Benchmark.kind ->
  of_:engine -> over:engine -> float
(** [speedup r kind ~of_ ~over] = time(over) / time(of_). *)

val figure4_table : benchmark_result list -> Table.t
val figure5_table : benchmark_result list -> Table.t

(** {2 Multi-core scaling (§7.2)} *)

type scaling_point = {
  cores : int;
  avg_seconds_sc : float;
  speedup_vs_1 : float;
}

type scaling_result = {
  benchmark_sc : Alveare_workloads.Benchmark.kind;
  points : scaling_point list;
}

val scaling :
  ?workers:int -> ?core_counts:int list -> scale:scale ->
  Alveare_workloads.Benchmark.kind -> scaling_result

val scaling_table : scaling_result list -> Table.t

(** {2 FPGA resources (§7.2)} *)

val area_table : unit -> Table.t
