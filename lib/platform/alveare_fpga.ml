(* The ALVEARE prototype itself: the cycle-level core/multicore simulator
   converted to wall-clock seconds at the paper's 300 MHz, plus the
   per-job PYNQ host-dispatch overhead (§7.2 measures matching time after
   memory loading, but each RE is still one offloaded invocation; this
   fixed cost is what limits scaling on the short-running PowerEN REs to
   the ~3x the paper reports). *)

module Multicore = Alveare_multicore.Multicore

type outcome = {
  run : Measure.run;
  wall_cycles : int;
  result : Multicore.result;
}

let run ?full_bytes ?(cores = 1) ?(overlap = Multicore.default_overlap)
    ?(core_config = Alveare_arch.Core.default_config) ?prefilter ?plan ?dfa
    (program : Alveare_isa.Program.t) (input : string) : outcome =
  if cores > Area.max_cores () then
    invalid_arg
      (Printf.sprintf "Alveare_fpga.run: %d cores do not fit the XCZU3EG (max %d)"
         cores (Area.max_cores ()));
  let mc =
    Multicore.run ?prefilter ?plan ?dfa
      ~config:(Multicore.config ~cores ~overlap ~core_config ())
      program input
  in
  let k = Measure.scale ~sample_bytes:(max 1 (String.length input)) ~full_bytes in
  let matching =
    k *. float_of_int mc.Multicore.cycles /. Calibration.alveare_clock_hz
  in
  { run =
      Measure.make
        ~match_count:(List.length mc.Multicore.matches)
        [ ("dispatch", Calibration.alveare_job_overhead_s);
          ("matching", matching) ];
    wall_cycles = mc.Multicore.cycles;
    result = mc }
