(** The ALVEARE prototype: multicore cycle simulation at 300 MHz plus the
    per-RE PYNQ dispatch overhead (the constant that caps PowerEN scaling
    at ~3x in §7.2). Refuses core counts beyond {!Area.max_cores}. *)

type outcome = {
  run : Measure.run;
  wall_cycles : int;
  result : Alveare_multicore.Multicore.result;
}

val run :
  ?full_bytes:int ->
  ?cores:int ->
  ?overlap:int ->
  ?core_config:Alveare_arch.Core.config ->
  ?prefilter:Alveare_prefilter.Prefilter.t ->
  ?plan:Alveare_arch.Plan.t ->
  ?dfa:Alveare_arch.Dfa_overlay.family ->
  Alveare_isa.Program.t ->
  string ->
  outcome
(** [plan]/[dfa] as in {!Alveare_multicore.Multicore.run}: a pre-built
    execution plan and its lazy-DFA overlay family (host simulation
    speed only — modelled cycles and matches are unchanged). *)
