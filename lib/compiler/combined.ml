(* Fused one-pass ruleset engine (single-pass multi-pattern scan).

   The per-rule scan path walks the whole stream once per rule: each
   covered rule consumes its Aho-Corasick candidate bucket, every other
   rule runs its own first-set skip loop — O(rules) passes of filter
   machinery over the same bytes, which dominates at Snort-scale
   rulesets even after the prefilter removed most attempts. This module
   fuses the whole ruleset into ONE streaming pass:

   - the Aho-Corasick literal automaton is stepped inline, filling the
     covered rules' candidate buckets exactly as [candidates_by_rule]
     would (same pushes, same sort_uniq) — those rules still attempt
     post-sweep, since AC reports at literal END positions;
   - every non-covered, non-anchored rule with a usable first set gets
     a 256-entry shared dispatch table slot per first-set byte; the
     sweep delivers each position whose byte is in the rule's first
     bitmap to a per-rule incremental scan machine that replays
     [Core.scan_plan]'s exact query/prune/filter/attempt sequence —
     the candidate stream "byte at position i is in the first set" is
     precisely what the per-rule prefilter skip loop enumerates, so
     every counter charge lands identically;
   - where such a rule is additionally backtracking-free over its whole
     plan ([safe_fragments] covers every op) and its lazy-DFA overlay
     instance is available, attempts run as {!Dfa_overlay.thread}s fed
     byte-per-byte INSIDE the sweep — the product overlay over the
     union of those rules: one pass, one table lookup per live rule per
     byte, per-rule acceptance tags. Candidates arriving while a
     thread is in flight are parked and replayed the moment it
     resolves, preserving the sequential attempt order bit-exactly.

   Everything else (anchored, nullable, no-first-set, derivative
   backend) is left to the caller's residual per-rule path, which is
   unchanged. The hits, spans, and every per-rule stats counter are
   bit-identical to the per-rule scan — the @onepasscheck differential
   battery pins this. *)

module Core = Alveare_arch.Core
module Plan = Alveare_arch.Plan
module Dfa = Alveare_arch.Dfa_overlay
module Ac = Alveare_prefilter.Ac
module Pf = Alveare_prefilter.Prefilter
module Span = Alveare_engine.Semantics

(* --- Classification ----------------------------------------------------- *)

type klass =
  | K_residual  (* caller's per-rule path: anchored / nullable / derivative *)
  | K_ac        (* AC-covered: candidates collected by the shared sweep *)
  | K_first     (* first-set dispatch: scanned in-sweep by a machine *)

type ac_index = {
  ai_ac : Ac.t;
  ai_refs : (int * int) array;  (* AC pattern idx -> (rule idx, lit offset) *)
}

type t = {
  rules : Compile.compiled array;
  klass : klass array;
  product_ok : bool array;  (* fully fragment-covered: thread-capable *)
  dispatch : int array array;
      (* byte -> K_first rule indices (ascending) whose first set
         contains it; merged from the per-rule first bitmaps *)
  ac : ac_index option;
}

(* Thread execution never leaves the transition table only if the safe
   fragments cover every op of the plan; partial coverage keeps the
   rule on instant per-candidate attempts (which bail per-attempt). *)
let fully_safe (c : Compile.compiled) =
  let nops = Array.length (Plan.ops c.Compile.plan) in
  nops > 0
  && begin
    let covered = Array.make nops false in
    List.iter
      (fun (lo, hi) ->
         for pc = max 0 lo to min nops hi - 1 do covered.(pc) <- true done)
      c.Compile.safe_fragments;
    Array.for_all (fun x -> x) covered
  end

let build ~(rules : Compile.compiled array)
    ~(ac : (Ac.t * (int * int) array * bool array) option) : t =
  let covered i =
    match ac with Some (_, _, cov) -> cov.(i) | None -> false
  in
  let klass =
    Array.mapi
      (fun i (c : Compile.compiled) ->
         match c.Compile.backend with
         | Compile.Derivative _ -> K_residual
         | Compile.Isa | Compile.Isa_lowered ->
           if covered i then K_ac
           else
             let pf = c.Compile.prefilter in
             if Pf.first_usable pf && not pf.Pf.anchored then K_first
             else K_residual)
      rules
  in
  let product_ok =
    Array.mapi
      (fun i (c : Compile.compiled) ->
         klass.(i) = K_first && c.Compile.dfa <> None && fully_safe c)
      rules
  in
  let dispatch_l = Array.make 256 [] in
  for i = Array.length rules - 1 downto 0 do
    if klass.(i) = K_first then begin
      let pf = rules.(i).Compile.prefilter in
      for b = 0 to 255 do
        if Pf.mem_first pf (Char.chr b) then
          dispatch_l.(b) <- i :: dispatch_l.(b)
      done
    end
  done;
  { rules;
    klass;
    product_ok;
    dispatch = Array.map Array.of_list dispatch_l;
    ac = Option.map (fun (a, r, _) -> { ai_ac = a; ai_refs = r }) ac }

(* --- Scan counters (server gauges) -------------------------------------- *)

type counters = {
  onepass_scans : int;
  shared_pass_bytes : int;
  dispatch_candidates : int;
  ac_candidates : int;
  product_rules : int;
  product_threads : int;
  product_states : int;
}

let c_scans = Atomic.make 0
let c_bytes = Atomic.make 0
let c_dispatch = Atomic.make 0
let c_ac = Atomic.make 0
let c_prules = Atomic.make 0
let c_pthreads = Atomic.make 0
let c_pstates = Atomic.make 0

let atomic_add a k = ignore (Atomic.fetch_and_add a k)

let counters () =
  { onepass_scans = Atomic.get c_scans;
    shared_pass_bytes = Atomic.get c_bytes;
    dispatch_candidates = Atomic.get c_dispatch;
    ac_candidates = Atomic.get c_ac;
    product_rules = Atomic.get c_prules;
    product_threads = Atomic.get c_pthreads;
    product_states = Atomic.get c_pstates }

(* --- The fused sweep ---------------------------------------------------- *)

type outcome =
  | Scanned of Core.stats * Span.span list
      (* K_first: scanned in-sweep; stats and spans are exactly the
         per-rule scan's *)
  | Candidates of int array
      (* K_ac: sorted candidate starts, identical to
         [candidates_by_rule]; the caller attempts post-sweep *)
  | Residual
      (* untouched by the sweep: caller's per-rule path *)

(* One K_first rule's incremental replica of [Core.scan_plan]. The
   sweep delivers the rule's candidate positions in ascending order;
   the machine carries scan_plan's cursor ([m_offset]), pending
   rejected-run length, and found list, so the per-event arithmetic is
   the loop body of scan_plan verbatim. While a product thread is in
   flight the machine is blocked and arriving candidates park in
   [m_pending]; resolution replays them in order. *)
type machine = {
  m_plan : Plan.t;
  m_scratch : Plan.scratch;
  m_leading : Plan.leading;
  m_stats : Core.stats;
  mutable m_found : Span.span list;  (* reversed *)
  mutable m_offset : int;
  mutable m_rejected : int;
  m_session : Dfa.t option;  (* acquired overlay instance, if any *)
  m_product : bool;
  mutable m_thread : Dfa.thread option;
  mutable m_thread_start : int;
  mutable m_pending : int array;
  mutable m_pending_len : int;
}

let scan (t : t) ?(dfa = true) (input : string) : outcome array =
  let n = String.length input in
  let nr = Array.length t.rules in
  let config = Core.default_config in
  let outcomes = Array.make nr Residual in
  let machines = Array.make nr None in
  let sessions = ref [] in
  let product_sessions = ref [] in
  let states_built () =
    List.fold_left
      (fun acc d -> acc + (Dfa.stats_of d).Dfa.states_built)
      0 !product_sessions
  in
  let n_product = ref 0 in
  Fun.protect ~finally:(fun () -> List.iter Dfa.release !sessions)
  @@ fun () ->
  Array.iteri
    (fun i (c : Compile.compiled) ->
       if t.klass.(i) = K_first then begin
         let session =
           (* mirror of [Core.dfa_session]: engage only a family built
              from this very plan, and never wait on a held instance *)
           if dfa then
             match c.Compile.dfa with
             | Some fam when Dfa.plan_of fam == c.Compile.plan ->
               let d = Dfa.get fam in
               if Dfa.acquire d ~config then begin
                 sessions := d :: !sessions;
                 Some d
               end
               else None
             | Some _ | None -> None
           else None
         in
         let product = t.product_ok.(i) && session <> None in
         if product then begin
           incr n_product;
           product_sessions := Option.get session :: !product_sessions
         end;
         machines.(i) <-
           Some
             { m_plan = c.Compile.plan;
               m_scratch = Plan.create_scratch ();
               m_leading = Plan.leading c.Compile.plan;
               m_stats = Core.fresh_stats ();
               m_found = [];
               m_offset = 0;
               m_rejected = 0;
               m_session = session;
               m_product = product;
               m_thread = None;
               m_thread_start = 0;
               m_pending = Array.make 8 0;
               m_pending_len = 0 }
       end)
    t.rules;
  let states_before = states_built () in
  (* scan_plan's loop body, split into per-event pieces *)
  let flush_run m =
    if m.m_rejected > 0 then begin
      let cycles =
        (m.m_rejected + config.Core.compute_units - 1)
        / config.Core.compute_units
      in
      m.m_stats.Core.scan_cycles <- m.m_stats.Core.scan_cycles + cycles;
      m.m_stats.Core.cycles <- m.m_stats.Core.cycles + cycles;
      m.m_rejected <- 0
    end
  in
  let prune m k =
    m.m_stats.Core.offsets_scanned <- m.m_stats.Core.offsets_scanned + k;
    m.m_stats.Core.offsets_pruned <- m.m_stats.Core.offsets_pruned + k;
    m.m_rejected <- m.m_rejected + k
  in
  let filter_pass m cand =
    match m.m_leading with
    | Plan.Lead_none -> true
    | Plan.Lead_literal lit ->
      cand < n && Plan.literal_matches input cand lit
    | Plan.Lead_set bits ->
      cand < n && Plan.set_mem bits (String.unsafe_get input cand)
  in
  let run_attempt m cand =
    match m.m_session with
    | Some d ->
      Dfa.run_acquired d ~config ~stats:m.m_stats m.m_scratch input cand
    | None -> Plan.run ~config ~stats:m.m_stats m.m_plan m.m_scratch input cand
  in
  let record_match m span =
    m.m_found <- span :: m.m_found;
    m.m_stats.Core.match_count <- m.m_stats.Core.match_count + 1;
    m.m_offset <- Span.next_scan_position span
  in
  let attempt_at m cand =
    flush_run m;
    match run_attempt m cand with
    | Some stop -> record_match m { Span.start = cand; stop }
    | None -> m.m_offset <- cand + 1
  in
  (* Candidate below the cursor: scan_plan would never query it. A
     candidate at or past it is by construction the smallest such one
     (candidates arrive ascending and processing always moves the
     cursor past the processed candidate), i.e. exactly what
     [next m_offset] would have returned. *)
  let accept_instant m cand =
    if cand >= m.m_offset then begin
      if cand > m.m_offset then prune m (cand - m.m_offset);
      m.m_stats.Core.offsets_scanned <- m.m_stats.Core.offsets_scanned + 1;
      if not (filter_pass m cand) then begin
        m.m_stats.Core.offsets_pruned <- m.m_stats.Core.offsets_pruned + 1;
        m.m_rejected <- m.m_rejected + 1;
        m.m_offset <- cand + 1
      end
      else attempt_at m cand
    end
  in
  let drain_pending m =
    for k = 0 to m.m_pending_len - 1 do
      accept_instant m m.m_pending.(k)
    done;
    m.m_pending_len <- 0
  in
  let resolve m th status =
    let s = m.m_thread_start in
    m.m_thread <- None;
    (match status with
     | Dfa.Th_matched stop ->
       Dfa.thread_commit th ~stats:m.m_stats;
       record_match m { Span.start = s; stop }
     | Dfa.Th_failed ->
       Dfa.thread_commit th ~stats:m.m_stats;
       m.m_offset <- s + 1
     | Dfa.Th_bailed ->
       (* stats untouched by the dead thread; re-run the whole attempt
          on the session, which is a bail's normal contract *)
       (match run_attempt m s with
        | Some stop -> record_match m { Span.start = s; stop }
        | None -> m.m_offset <- s + 1)
     | Dfa.Th_running -> assert false);
    drain_pending m
  in
  let spawned = ref 0 in
  (* Candidate arriving at the sweep position for an idle machine: a
     product machine starts a thread (fed this byte immediately),
     anything else attempts in place. *)
  let accept m cand =
    if cand >= m.m_offset then begin
      if cand > m.m_offset then prune m (cand - m.m_offset);
      m.m_stats.Core.offsets_scanned <- m.m_stats.Core.offsets_scanned + 1;
      if not (filter_pass m cand) then begin
        m.m_stats.Core.offsets_pruned <- m.m_stats.Core.offsets_pruned + 1;
        m.m_rejected <- m.m_rejected + 1;
        m.m_offset <- cand + 1
      end
      else if m.m_product then begin
        flush_run m;
        let d = match m.m_session with Some d -> d | None -> assert false in
        let th = Dfa.thread_start d in
        m.m_thread <- Some th;
        m.m_thread_start <- cand;
        incr spawned;
        match Dfa.thread_feed th input cand with
        | Dfa.Th_running -> ()  (* caller moves it to the active list *)
        | status -> resolve m th status
      end
      else attempt_at m cand
    end
  in
  let push_pending m cand =
    if m.m_pending_len >= Array.length m.m_pending then begin
      let d = Array.make (2 * Array.length m.m_pending) 0 in
      Array.blit m.m_pending 0 d 0 m.m_pending_len;
      m.m_pending <- d
    end;
    m.m_pending.(m.m_pending_len) <- cand;
    m.m_pending_len <- m.m_pending_len + 1
  in
  (* rule indices with a live thread; swap-removed on resolution *)
  let active = Array.make (max 1 !n_product) 0 in
  let n_active = ref 0 in
  let feed_threads pos =
    let k = ref 0 in
    while !k < !n_active do
      let ri = active.(!k) in
      let m =
        match machines.(ri) with Some m -> m | None -> assert false
      in
      let th =
        match m.m_thread with Some th -> th | None -> assert false
      in
      match Dfa.thread_feed th input pos with
      | Dfa.Th_running -> incr k
      | status ->
        resolve m th status;
        decr n_active;
        active.(!k) <- active.(!n_active)
    done
  in
  let buckets =
    match t.ac with Some _ -> Array.make nr [] | None -> [||]
  in
  let ac_state = ref Ac.root in
  let disp_count = ref 0 and ac_count = ref 0 in
  for i = 0 to n - 1 do
    if !n_active > 0 then feed_threads i;
    (match t.ac with
     | Some a ->
       ac_state := Ac.step a.ai_ac !ac_state (String.unsafe_get input i);
       let out = Ac.outputs a.ai_ac !ac_state in
       for k = 0 to Array.length out - 1 do
         let pat = out.(k) in
         let rule_idx, lit_offset = a.ai_refs.(pat) in
         let start = i + 1 - Ac.pattern_length a.ai_ac pat - lit_offset in
         if start >= 0 then begin
           buckets.(rule_idx) <- start :: buckets.(rule_idx);
           incr ac_count
         end
       done
     | None -> ());
    let ds =
      Array.unsafe_get t.dispatch (Char.code (String.unsafe_get input i))
    in
    for k = 0 to Array.length ds - 1 do
      let ri = Array.unsafe_get ds k in
      match machines.(ri) with
      | Some m ->
        incr disp_count;
        if m.m_thread <> None then push_pending m i
        else begin
          accept m i;
          if m.m_thread <> None then begin
            active.(!n_active) <- ri;
            incr n_active
          end
        end
      | None -> assert false
    done
  done;
  (* End of input: symbol 256 always resolves a thread (no transition
     consumes it), so every blocked machine drains here. *)
  if !n_active > 0 then feed_threads n;
  assert (!n_active = 0);
  Array.iteri
    (fun i mo ->
       match mo with
       | Some m ->
         (* scan_plan's terminal branch: prune the un-queried tail *)
         if m.m_offset <= n then prune m (n - m.m_offset + 1);
         flush_run m;
         outcomes.(i) <- Scanned (m.m_stats, List.rev m.m_found)
       | None ->
         if t.klass.(i) = K_ac then
           outcomes.(i) <-
             Candidates
               (Array.of_list (List.sort_uniq compare buckets.(i))))
    machines;
  Atomic.incr c_scans;
  atomic_add c_bytes n;
  atomic_add c_dispatch !disp_count;
  atomic_add c_ac !ac_count;
  atomic_add c_prules !n_product;
  atomic_add c_pthreads !spawned;
  atomic_add c_pstates (max 0 (states_built () - states_before));
  outcomes
