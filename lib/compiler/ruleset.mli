(** Rule-set management — the DPI deployment unit: compile many tagged
    rules once, scan streams through all of them on the simulated DSA,
    and report per-rule hits and cycle costs. *)

type rule = {
  id : int;
  tag : string;
  pattern : string;
}

type compiled_rule = {
  rule : rule;
  compiled : Compile.compiled;
  overlap : int;  (** multi-core boundary window for this rule *)
}

type index
(** Aho-Corasick automaton over the union of all rules' required
    literals, plus the mapping from literal occurrences back to
    per-rule candidate match-start offsets. Built once at
    {!val-compile} time. *)

type t = {
  rules : compiled_rule array;
  index : index option;  (** [None] when no rule has usable literals *)
  fused : Combined.t;
      (** the one-pass engine over the same rules: classification,
          shared first-set dispatch table, literal index (see
          {!Combined}); built once here, used by prefiltered
          single-core {!scan}s *)
}

type compile_error = {
  failed_rule : rule;
  reason : string;
}

val compile :
  ?options:Alveare_ir.Lower.options ->
  ?cache:Compile.cache ->
  ?workers:int ->
  ?extended:bool ->
  (string * string) list ->
  (t, compile_error list) result
(** [(tag, pattern)] pairs; reports EVERY ill-formed rule. Compilation
    goes through {!Compile.cached} (default: the shared
    {!Compile.default_cache}), so repeated patterns compile once;
    [workers] fans independent rule compilations out over host domains.
    [extended] (default false) parses the extended dialect — rules the
    mid-end cannot rewrite for the ISA scan on the host derivative
    engine (hits identical in {!scan}; no modelled DSA cycles). *)

val compile_exn :
  ?options:Alveare_ir.Lower.options ->
  ?cache:Compile.cache ->
  ?workers:int ->
  ?extended:bool ->
  (string * string) list ->
  t

val lint_report : t -> (rule * Alveare_analysis.Lint.diagnostic list) list
(** Rules with at least one lint diagnostic (ReDoS heuristics, repeat
    blowup, …), in rule order. Compilation never fails on lint; this
    is how a ruleset build surfaces its suspect rules. *)

val analysis_report : t -> (rule * Alveare_analysis.Ambiguity.t) list
(** Every rule with its precise worst-case backtracking verdict, in
    rule order — the input an admission gate filters on. *)

val size : t -> int
val rules : t -> rule list
val find_rule : t -> int -> rule option

type hit = {
  hit_rule : rule;
  span : Alveare_engine.Semantics.span;
}

type report = {
  hits : hit list;
  total_wall_cycles : int;
  seconds : float;  (** modelled DSA time including per-rule dispatch *)
  per_rule_cycles : (int * int) list;
  total_attempts : int;         (** matching attempts started, all rules *)
  total_offsets_scanned : int;  (** offsets considered, all rules *)
  total_offsets_pruned : int;   (** offsets rejected without an attempt *)
  prefiltered_rules : int;
      (** rules scanned via the Aho-Corasick candidate path this scan *)
}

val scan :
  ?cores:int -> ?workers:int -> ?prefilter:bool -> ?dfa:bool ->
  ?onepass:bool -> t -> string ->
  report
(** Rules run sequentially on the DSA (one compiled RE in instruction
    memory at a time); [cores] parallelises each rule over the stream on
    the simulated hardware. [workers] parallelises the host-side
    simulation of the independent per-rule runs ({!Alveare_exec.Pool});
    the report — hits, per-rule cycles, modelled seconds — is identical
    to the sequential scan for any value.

    [prefilter] (default [true]): rules covered by the literal {!index}
    attempt only at candidate offsets from one Aho-Corasick pass over
    the stream — sliced across workers and merged when [cores > 1] —
    and every other rule scans with its first-set prefilter. Hits are
    identical with prefiltering on or off — only attempts/cycles
    change.

    [dfa] (default [true]): rules whose compilation carries a lazy-DFA
    overlay family execute their backtracking-free fragments on the
    transition table ({!Alveare_arch.Dfa_overlay}); hits, cycles and
    every stat are bit-identical with it on or off — only host
    simulation speed changes.

    [onepass] (default [true]): prefiltered single-core scans run the
    fused {!Combined} engine — one shared sweep walking the literal
    automaton and the merged first-set dispatch table, with product
    overlay threads for fully backtracking-free rules — instead of one
    pass per rule. The report is bit-identical to [~onepass:false]
    (the [@onepasscheck] battery pins this); only host scan speed
    changes. Ignored when [cores > 1] (slicing already shares the AC
    pass) or with [~prefilter:false]. *)

val hits_for : report -> int -> hit list
