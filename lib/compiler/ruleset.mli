(** Rule-set management — the DPI deployment unit: compile many tagged
    rules once, scan streams through all of them on the simulated DSA,
    and report per-rule hits and cycle costs. *)

type rule = {
  id : int;
  tag : string;
  pattern : string;
}

type compiled_rule = {
  rule : rule;
  compiled : Compile.compiled;
  overlap : int;  (** multi-core boundary window for this rule *)
}

type t = {
  rules : compiled_rule array;
}

type compile_error = {
  failed_rule : rule;
  reason : string;
}

val compile :
  ?options:Alveare_ir.Lower.options ->
  ?cache:Compile.cache ->
  ?workers:int ->
  (string * string) list ->
  (t, compile_error list) result
(** [(tag, pattern)] pairs; reports EVERY ill-formed rule. Compilation
    goes through {!Compile.cached} (default: the shared
    {!Compile.default_cache}), so repeated patterns compile once;
    [workers] fans independent rule compilations out over host domains. *)

val compile_exn :
  ?options:Alveare_ir.Lower.options ->
  ?cache:Compile.cache ->
  ?workers:int ->
  (string * string) list ->
  t

val lint_report : t -> (rule * Alveare_analysis.Lint.diagnostic list) list
(** Rules with at least one lint diagnostic (ReDoS heuristics, repeat
    blowup, …), in rule order. Compilation never fails on lint; this
    is how a ruleset build surfaces its suspect rules. *)

val size : t -> int
val rules : t -> rule list
val find_rule : t -> int -> rule option

type hit = {
  hit_rule : rule;
  span : Alveare_engine.Semantics.span;
}

type report = {
  hits : hit list;
  total_wall_cycles : int;
  seconds : float;  (** modelled DSA time including per-rule dispatch *)
  per_rule_cycles : (int * int) list;
}

val scan : ?cores:int -> ?workers:int -> t -> string -> report
(** Rules run sequentially on the DSA (one compiled RE in instruction
    memory at a time); [cores] parallelises each rule over the stream on
    the simulated hardware. [workers] parallelises the host-side
    simulation of the independent per-rule runs ({!Alveare_exec.Pool});
    the report — hits, per-rule cycles, modelled seconds — is identical
    to the sequential scan for any value. *)

val hits_for : report -> int -> hit list
