(** Fused one-pass ruleset engine (single-pass multi-pattern scan).

    Compiles a whole ruleset's scan-side machinery into one shared
    sweep: the Aho-Corasick literal automaton and every non-covered
    rule's first-set dispatch run over the input ONCE, dispatching into
    per-rule attempt machines; rules that are backtracking-free over
    their whole plan additionally execute as lazy-DFA overlay
    {e product threads} — table-per-byte inside the shared sweep, with
    per-rule acceptance tags. Spans and every per-rule stats counter
    are bit-identical to the per-rule scan path ({!Ruleset.scan} with
    [~onepass:false]); the [@onepasscheck] differential battery pins
    this.

    This module is the scan engine only: {!Ruleset} owns rule
    metadata, classification inputs (the AC index), the post-sweep
    candidate attempts, and the residual per-rule arms. *)

type t
(** The fused engine for one ruleset: per-rule classification, the
    256-entry shared dispatch table merged from the rules' first
    bitmaps, and the literal index. Built once at
    {!Ruleset.compile} time; immutable and domain-shareable. *)

val build :
  rules:Compile.compiled array ->
  ac:
    (Alveare_prefilter.Ac.t * (int * int) array * bool array) option ->
  t
(** [build ~rules ~ac] classifies each rule and merges the dispatch
    table. [ac] is the ruleset's literal index — the automaton, the
    pattern-to-(rule, literal offset) references, and the per-rule
    covered flags — or [None] when no rule has usable literals. *)

(** Per-rule result of one fused sweep. *)
type outcome =
  | Scanned of Alveare_arch.Core.stats * Alveare_engine.Semantics.span list
      (** scanned in-sweep (first-set dispatch, possibly as a product
          thread): exactly the stats and spans the per-rule scan would
          have produced *)
  | Candidates of int array
      (** AC-covered: sorted candidate start offsets, identical to the
          per-rule bucketing; the caller attempts post-sweep *)
  | Residual
      (** untouched: anchored / nullable / no-first-set / derivative
          rules stay on the caller's per-rule path *)

val scan : t -> ?dfa:bool -> string -> outcome array
(** One streaming pass over the input. [dfa] (default true) gates the
    overlay sessions — with it off, first-set rules attempt on
    {!Alveare_arch.Plan.run} and no product threads spawn, results
    unchanged. Runs entirely on the calling domain. *)

(** {1 Scan counters}

    Process-wide monotone counters over all fused scans, exported as
    [ruleset/*] server gauges. *)

type counters = {
  onepass_scans : int;        (** fused sweeps run *)
  shared_pass_bytes : int;    (** input bytes swept *)
  dispatch_candidates : int;  (** first-set dispatch deliveries *)
  ac_candidates : int;        (** candidate bucket entries collected *)
  product_rules : int;        (** rules eligible as product threads *)
  product_threads : int;      (** product thread attempts spawned *)
  product_states : int;       (** overlay states built during sweeps *)
}

val counters : unit -> counters
