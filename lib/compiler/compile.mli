(** Compiler driver: pattern → AST → IR → ISA program (paper §5).

    Extended patterns (intersection [&], complement [(?~r)], the four
    lookarounds) are accepted with [~extended:true]: the mid-end
    rewrite {!Alveare_ir.Elim.plainify} eliminates the extended
    operators when it can do so priority-preservingly (the ISA then
    serves the pattern, [backend = Isa_lowered]); otherwise the pattern
    compiles to a derivative matcher ([backend = Derivative]) — no
    extended pattern is ever rejected as unsupported. *)

type backend =
  | Isa  (** plain POSIX-ERE source; the normal pipeline *)
  | Isa_lowered
      (** extended source rewritten to an equivalent plain AST
          (same language, same leftmost-first spans) and served by
          the ISA *)
  | Derivative of Alveare_derivative.Engine.t
      (** served natively by the derivative engine; [program], [plan],
          [ir], [dfa] and [safe_fragments] hold a placeholder compiled
          from the empty pattern and must not be executed — dispatch
          sites check [backend] first *)

type compiled = {
  pattern : string;
  ast : Alveare_frontend.Ast.t;
      (** normalised and — when optimisation is on — rewritten by
          {!Alveare_ir.Opt.optimize}; always the exact AST the binary
          was lowered from *)
  ir : Alveare_ir.Ir.t;
  program : Alveare_isa.Program.t;
  plan : Alveare_arch.Plan.t;
      (** pre-decoded execution plan lowered from [program] at compile
          time (after the post-emission self-check, so no further
          validation happens on any scan path); pass to
          {!Alveare_arch.Core} entry points as [?plan] *)
  options : Alveare_ir.Lower.options;
  lint : Alveare_analysis.Lint.diagnostic list;
      (** lint diagnostics for the source pattern (empty when compiled
          from a bare AST) — advisory, never a compile failure;
          includes the precise witness-backed kinds from
          {!Alveare_analysis.Lint.full} *)
  analysis : Alveare_analysis.Ambiguity.t;
      (** precise worst-case backtracking classification of the source
          pattern, witness-backed ({!Alveare_analysis.Ambiguity});
          {!Alveare_analysis.Ambiguity.unanalyzed} when compiled from a
          bare AST unless the caller supplies one *)
  safe_fragments : (int * int) list;
      (** address intervals [[lo, hi)] of [program] proven
          backtracking-free by {!Alveare_analysis.Ambiguity.program_fragments};
          computed from the emitted program in every compile path *)
  dfa : Alveare_arch.Dfa_overlay.family option;
      (** lazy-DFA overlay family built from [plan] and
          [safe_fragments]; pass to {!Alveare_arch.Core} entry points
          as [?dfa] alongside [?plan]. [None] when the fragments are
          trivial (the overlay could never engage) *)
  prefilter : Alveare_prefilter.Prefilter.t;
      (** start-of-match prefilter facts extracted from the normalised
          AST (first byte-set, required literals, min match length);
          feed to {!Alveare_arch.Core.search}/[find_all] or serialise as
          a [.pf] sidecar with {!Alveare_prefilter.Prefilter.to_bytes} *)
  backend : backend;
      (** which engine serves this pattern; [Isa] for every plain
          compile, [Isa_lowered] / [Derivative] for extended ones *)
}

type error =
  | Frontend_error of string
  | Backend_error of Alveare_backend.Emit.error
  | Verify_error of Alveare_isa.Verify.violation list
      (** the emitted program failed the static verifier — a compiler
          bug, not a pattern error *)

val error_message : error -> string

val compile :
  ?options:Alveare_ir.Lower.options ->
  ?optimize:bool ->
  ?verify:bool ->
  ?extended:bool ->
  string ->
  (compiled, error) result
(** Pattern → AST → IR → program. [extended] (default false) parses
    the extended dialect — see the module header for how extended
    patterns are served. With [verify] (the default) the
    emitted program must pass {!Alveare_isa.Verify.run} — a
    post-emission self-check that turns any emission bug into a
    structured [Verify_error] instead of a latent bad binary. The
    result also carries the pattern's lint diagnostics.

    [optimize] overrides [options.optimize] (default on): the mid-end
    rewrite pass {!Alveare_ir.Opt.optimize} runs here in the driver,
    guarded so the optimised program is never larger than the
    unoptimised one ([--no-opt] in the CLI tools maps to
    [~optimize:false]). *)

val compile_ast :
  ?options:Alveare_ir.Lower.options ->
  ?optimize:bool ->
  ?pattern:string ->
  ?verify:bool ->
  ?lint:Alveare_analysis.Lint.diagnostic list ->
  ?analysis:Alveare_analysis.Ambiguity.t ->
  Alveare_frontend.Ast.t ->
  (compiled, error) result
(** Compile a bare AST (extended nodes accepted — they route exactly
    as in {!compile}). Skips the source-level lint / ambiguity passes
    (they are span-typed): [lint] defaults to [[]] and [analysis] to
    {!Alveare_analysis.Ambiguity.unanalyzed}, keeping this path cheap
    for differential harnesses that compile thousands of generated
    ASTs. [safe_fragments] is still computed — it reads the emitted
    program, not the source. *)

val compile_exn :
  ?options:Alveare_ir.Lower.options ->
  ?optimize:bool ->
  ?verify:bool ->
  ?extended:bool ->
  string ->
  compiled

(** {2 Compiled-pattern cache}

    Thread-safe LRU over compiled programs, keyed on pattern source +
    compile options, so rule sets and the evaluation harness stop
    recompiling identical patterns. A cached compilation is the very
    value an uncached one would produce (same binary, byte for byte). *)

type cache = compiled Alveare_exec.Cache.t

val create_cache : ?capacity:int -> unit -> cache

val default_cache : cache
(** Process-wide shared cache (capacity 1024) used when [?cache] is
    omitted. Safe to use from multiple domains. *)

val cached :
  ?cache:cache ->
  ?options:Alveare_ir.Lower.options ->
  ?optimize:bool ->
  ?verify:bool ->
  ?extended:bool ->
  string ->
  (compiled, error) result
(** Like {!compile}, but consults [cache] first. Only successful
    compilations are cached; errors always recompile. [optimize] and
    [extended] participate in the cache key ([optimize] overrides
    [options.optimize] before the key is formed; the same source can
    parse differently under the two dialects). *)

val cached_exn :
  ?cache:cache ->
  ?options:Alveare_ir.Lower.options ->
  ?optimize:bool ->
  ?extended:bool ->
  string ->
  compiled

val cache_stats : cache -> Alveare_exec.Cache.stats
(** Hit/miss/eviction counters and current occupancy. *)

val code_size : compiled -> int
(** Instructions excluding EoR (Table 2 metric). *)

type stats = {
  code_size : int;
  total_instructions : int;
  histogram : Alveare_isa.Program.histogram;
  binary_bytes : int;
  ast_size : int;
  ast_depth : int;
}

val stats : compiled -> stats
val disassemble : compiled -> string

val to_binary :
  ?strict:bool -> compiled -> (bytes, Alveare_isa.Binary.error) result

val pp_stats : stats Fmt.t
