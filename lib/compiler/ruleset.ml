(* Rule-set management: the deployment unit of DPI engines like Snort
   (paper §7.2) is not one RE but hundreds. A ruleset compiles each rule
   once, keeps per-rule binaries and metadata, and scans a stream
   through every rule on the simulated DSA — the paper's model, where
   cores share one compiled RE and iterate the rule set per stream.

   Compilation is all-or-error-list: a production rule set wants to know
   every ill-formed rule, not just the first. *)

module Core = Alveare_arch.Core
module Multicore = Alveare_multicore.Multicore
module Span = Alveare_engine.Semantics

type rule = {
  id : int;
  tag : string;
  pattern : string;
}

type compiled_rule = {
  rule : rule;
  compiled : Compile.compiled;
  overlap : int;
}

type t = {
  rules : compiled_rule array;
}

type compile_error = {
  failed_rule : rule;
  reason : string;
}

let compile ?(options = Alveare_ir.Lower.default_options) ?cache ?workers
    (specs : (string * string) list) : (t, compile_error list) result =
  (* Rules compile independently, so the host pool fans them out; the
     shared compile cache (thread-safe) deduplicates repeated patterns
     across rules and across rulesets. *)
  let results =
    Alveare_exec.Pool.map_list ?workers
      (fun (id, (tag, pattern)) ->
         let rule = { id; tag; pattern } in
         match Compile.cached ?cache ~options pattern with
         | Ok compiled ->
           Ok
             { rule;
               compiled;
               overlap =
                 Multicore.overlap_for_ast compiled.Compile.ast }
         | Error e ->
           Error { failed_rule = rule; reason = Compile.error_message e })
      (List.mapi (fun id spec -> (id, spec)) specs)
  in
  let failures =
    List.filter_map (function Error e -> Some e | Ok _ -> None) results
  in
  if failures <> [] then Error failures
  else
    Ok
      { rules =
          Array.of_list
            (List.filter_map (function Ok r -> Some r | Error _ -> None) results) }

let compile_exn ?options ?cache ?workers specs =
  match compile ?options ?cache ?workers specs with
  | Ok t -> t
  | Error (e :: _) ->
    invalid_arg
      (Printf.sprintf "Ruleset.compile: rule %d (%s): %s" e.failed_rule.id
         e.failed_rule.tag e.reason)
  | Error [] -> assert false

(* Per-rule lint diagnostics, carried along by Compile so a ruleset
   build can report its ReDoS-suspect rules without re-parsing. *)
let lint_report (t : t) =
  Array.to_list t.rules
  |> List.filter_map (fun r ->
      match r.compiled.Compile.lint with
      | [] -> None
      | ds -> Some (r.rule, ds))

let size t = Array.length t.rules

let rules t = Array.to_list (Array.map (fun r -> r.rule) t.rules)

let find_rule t id =
  match Array.find_opt (fun r -> r.rule.id = id) t.rules with
  | Some r -> Some r.rule
  | None -> None

type hit = {
  hit_rule : rule;
  span : Span.span;
}

type report = {
  hits : hit list;               (* ordered by rule id, then position *)
  total_wall_cycles : int;       (* sum over rules of per-rule wall cycles *)
  seconds : float;               (* modelled DSA time incl. dispatch/rule *)
  per_rule_cycles : (int * int) list;
}

(* Scan the stream through every rule. Rules run one after another on the
   DSA (the instruction memory holds one compiled RE at a time, §6), so
   total time sums per-rule wall cycles plus one dispatch per rule — the
   modelled DSA cost is unchanged by [workers], which only parallelises
   the host-side simulation of the independent per-rule runs. Per-rule
   results are folded back in rule order, so hits and cycle accounting
   are identical to the sequential scan. *)
let scan ?(cores = 1) ?workers (t : t) (input : string) : report =
  let per_rule_results =
    Alveare_exec.Pool.map ?workers
      (fun r ->
         let config = Multicore.config ~cores ~overlap:r.overlap () in
         let result = Multicore.run ~config r.compiled.Compile.program input in
         (r.rule, result.Multicore.cycles, result.Multicore.matches))
      t.rules
  in
  let hits =
    Array.to_list per_rule_results
    |> List.concat_map (fun (rule, _, matches) ->
        List.map (fun span -> { hit_rule = rule; span }) matches)
  in
  let total =
    Array.fold_left (fun acc (_, cycles, _) -> acc + cycles) 0 per_rule_results
  in
  let seconds =
    (float_of_int total /. Alveare_platform.Calibration.alveare_clock_hz)
    +. (float_of_int (size t)
        *. Alveare_platform.Calibration.alveare_job_overhead_s)
  in
  { hits;
    total_wall_cycles = total;
    seconds;
    per_rule_cycles =
      Array.to_list
        (Array.map (fun (rule, cycles, _) -> (rule.id, cycles)) per_rule_results) }

let hits_for report id =
  List.filter (fun h -> h.hit_rule.id = id) report.hits
