(* Rule-set management: the deployment unit of DPI engines like Snort
   (paper §7.2) is not one RE but hundreds. A ruleset compiles each rule
   once, keeps per-rule binaries and metadata, and scans a stream
   through every rule on the simulated DSA — the paper's model, where
   cores share one compiled RE and iterate the rule set per stream.

   Compilation is all-or-error-list: a production rule set wants to know
   every ill-formed rule, not just the first. *)

module Core = Alveare_arch.Core
module Multicore = Alveare_multicore.Multicore
module Span = Alveare_engine.Semantics

type rule = {
  id : int;
  tag : string;
  pattern : string;
}

type compiled_rule = {
  rule : rule;
  compiled : Compile.compiled;
  overlap : int;
}

(* Aho-Corasick literal index over the union of all rules' required
   literals. One pass over the stream yields, per rule, the candidate
   match-start offsets (literal position minus the literal's offset
   within the pattern); each covered rule then attempts only at its
   candidates. Rules without usable literals are not covered and scan
   with their first-set prefilter instead. *)
type index = {
  ac : Alveare_prefilter.Ac.t;
  refs : (int * int) array;  (* AC pattern idx -> (rule array idx, lit offset) *)
  covered : bool array;      (* per rule: scanned via the candidate path *)
}

type t = {
  rules : compiled_rule array;
  index : index option;
}

type compile_error = {
  failed_rule : rule;
  reason : string;
}

let build_index (rules : compiled_rule array) : index option =
  let lits = ref [] and refs = ref [] and n_lits = ref 0 in
  let covered =
    Array.mapi
      (fun i r ->
         match
           Alveare_prefilter.Prefilter.usable_literals
             r.compiled.Compile.prefilter
         with
         | Some l when l.Alveare_prefilter.Prefilter.lits <> [] ->
           List.iter
             (fun s ->
                lits := s :: !lits;
                refs := (i, l.Alveare_prefilter.Prefilter.offset) :: !refs;
                incr n_lits)
             l.Alveare_prefilter.Prefilter.lits;
           true
         | Some _ | None -> false)
      rules
  in
  if !n_lits = 0 then None
  else
    Some
      { ac = Alveare_prefilter.Ac.build (List.rev !lits);
        refs = Array.of_list (List.rev !refs);
        covered }

(* One automaton pass over the stream; candidate start offsets per rule,
   sorted ascending and deduplicated. *)
let candidates_by_rule idx input n_rules =
  let buckets = Array.make n_rules [] in
  Alveare_prefilter.Ac.find_iter idx.ac input (fun ~pat ~pos ->
      let rule_idx, lit_offset = idx.refs.(pat) in
      let start = pos - lit_offset in
      if start >= 0 then buckets.(rule_idx) <- start :: buckets.(rule_idx));
  Array.map (fun l -> Array.of_list (List.sort_uniq compare l)) buckets

let compile ?(options = Alveare_ir.Lower.default_options) ?cache ?workers
    ?extended (specs : (string * string) list)
  : (t, compile_error list) result =
  (* Rules compile independently, so the host pool fans them out; the
     shared compile cache (thread-safe) deduplicates repeated patterns
     across rules and across rulesets. *)
  let results =
    Alveare_exec.Pool.map_list ?workers
      (fun (id, (tag, pattern)) ->
         let rule = { id; tag; pattern } in
         match Compile.cached ?cache ~options ?extended pattern with
         | Ok compiled ->
           Ok
             { rule;
               compiled;
               overlap =
                 Multicore.overlap_for_ast compiled.Compile.ast }
         | Error e ->
           Error { failed_rule = rule; reason = Compile.error_message e })
      (List.mapi (fun id spec -> (id, spec)) specs)
  in
  let failures =
    List.filter_map (function Error e -> Some e | Ok _ -> None) results
  in
  if failures <> [] then Error failures
  else
    let rules =
      Array.of_list
        (List.filter_map (function Ok r -> Some r | Error _ -> None) results)
    in
    Ok { rules; index = build_index rules }

let compile_exn ?options ?cache ?workers ?extended specs =
  match compile ?options ?cache ?workers ?extended specs with
  | Ok t -> t
  | Error (e :: _) ->
    invalid_arg
      (Printf.sprintf "Ruleset.compile: rule %d (%s): %s" e.failed_rule.id
         e.failed_rule.tag e.reason)
  | Error [] -> assert false

(* Per-rule lint diagnostics, carried along by Compile so a ruleset
   build can report its ReDoS-suspect rules without re-parsing. *)
let lint_report (t : t) =
  Array.to_list t.rules
  |> List.filter_map (fun r ->
      match r.compiled.Compile.lint with
      | [] -> None
      | ds -> Some (r.rule, ds))

(* Per-rule precise ambiguity verdicts (every rule appears — an
   admission gate needs the Linear rows too, to count them). *)
let analysis_report (t : t) =
  Array.to_list t.rules
  |> List.map (fun r -> (r.rule, r.compiled.Compile.analysis))

let size t = Array.length t.rules

let rules t = Array.to_list (Array.map (fun r -> r.rule) t.rules)

let find_rule t id =
  match Array.find_opt (fun r -> r.rule.id = id) t.rules with
  | Some r -> Some r.rule
  | None -> None

type hit = {
  hit_rule : rule;
  span : Span.span;
}

type report = {
  hits : hit list;               (* ordered by rule id, then position *)
  total_wall_cycles : int;       (* sum over rules of per-rule wall cycles *)
  seconds : float;               (* modelled DSA time incl. dispatch/rule *)
  per_rule_cycles : (int * int) list;
  total_attempts : int;
  total_offsets_scanned : int;
  total_offsets_pruned : int;
  prefiltered_rules : int;       (* rules scanned via the AC candidate path *)
}

(* Scan the stream through every rule. Rules run one after another on the
   DSA (the instruction memory holds one compiled RE at a time, §6), so
   total time sums per-rule wall cycles plus one dispatch per rule — the
   modelled DSA cost is unchanged by [workers], which only parallelises
   the host-side simulation of the independent per-rule runs. Per-rule
   results are folded back in rule order, so hits and cycle accounting
   are identical to the sequential scan.

   With [prefilter] (the default) rules whose required literals are in
   the Aho-Corasick index attempt only at candidate offsets from one
   automaton pass over the stream (single-core scans only: candidates
   are stream-global offsets); every other rule scans with its first-set
   skip loop. Hits are identical to the unfiltered scan either way. *)
let scan ?(cores = 1) ?workers ?(prefilter = true) ?(dfa = true) (t : t)
    (input : string) : report =
  let dfa_of (r : compiled_rule) =
    if dfa then r.compiled.Compile.dfa else None
  in
  let candidates =
    match t.index with
    | Some idx when prefilter && cores = 1 ->
      Some (idx, candidates_by_rule idx input (Array.length t.rules))
    | Some _ | None -> None
  in
  let per_rule_results =
    Alveare_exec.Pool.map ?workers
      (fun (i, r) ->
         match r.compiled.Compile.backend with
         | Compile.Derivative eng ->
           (* extended rules the mid-end could not rewrite run on the
              host derivative engine, outside the DSA cycle model:
              they contribute hits but no modelled cycles or attempt
              counters (they are never AC-covered — extended patterns
              yield no usable literals) *)
           ( r.rule, 0, Alveare_derivative.Engine.find_all eng input,
             (0, 0, 0), false )
         | Compile.Isa | Compile.Isa_lowered ->
         (match candidates with
         | Some (idx, cands) when idx.covered.(i) ->
           let stats = Core.fresh_stats () in
           let matches =
             Core.find_all_candidates ~stats ~candidates:cands.(i)
               ~plan:r.compiled.Compile.plan ?dfa:(dfa_of r)
               r.compiled.Compile.program input
           in
           ( r.rule, stats.Core.cycles, matches,
             (stats.Core.attempts, stats.Core.offsets_scanned,
              stats.Core.offsets_pruned),
             true )
         | _ ->
           let config = Multicore.config ~cores ~overlap:r.overlap () in
           let pf =
             if prefilter then Some r.compiled.Compile.prefilter else None
           in
           let result =
             Multicore.run ?prefilter:pf ~plan:r.compiled.Compile.plan
               ?dfa:(dfa_of r) ~config r.compiled.Compile.program input
           in
           let sum f =
             Array.fold_left
               (fun acc c -> acc + f c.Multicore.stats)
               0 result.Multicore.per_core
           in
           ( r.rule, result.Multicore.cycles, result.Multicore.matches,
             ( sum (fun s -> s.Core.attempts),
               sum (fun s -> s.Core.offsets_scanned),
               sum (fun s -> s.Core.offsets_pruned) ),
             false )))
      (Array.mapi (fun i r -> (i, r)) t.rules)
  in
  let hits =
    Array.to_list per_rule_results
    |> List.concat_map (fun (rule, _, matches, _, _) ->
        List.map (fun span -> { hit_rule = rule; span }) matches)
  in
  let total =
    Array.fold_left
      (fun acc (_, cycles, _, _, _) -> acc + cycles)
      0 per_rule_results
  in
  let sum_stat k =
    Array.fold_left
      (fun acc (_, _, _, stats, _) -> acc + k stats)
      0 per_rule_results
  in
  let seconds =
    (float_of_int total /. Alveare_platform.Calibration.alveare_clock_hz)
    +. (float_of_int (size t)
        *. Alveare_platform.Calibration.alveare_job_overhead_s)
  in
  { hits;
    total_wall_cycles = total;
    seconds;
    per_rule_cycles =
      Array.to_list
        (Array.map
           (fun (rule, cycles, _, _, _) -> (rule.id, cycles))
           per_rule_results);
    total_attempts = sum_stat (fun (a, _, _) -> a);
    total_offsets_scanned = sum_stat (fun (_, s, _) -> s);
    total_offsets_pruned = sum_stat (fun (_, _, p) -> p);
    prefiltered_rules =
      Array.fold_left
        (fun acc (_, _, _, _, ac) -> if ac then acc + 1 else acc)
        0 per_rule_results }

let hits_for report id =
  List.filter (fun h -> h.hit_rule.id = id) report.hits
