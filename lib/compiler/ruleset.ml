(* Rule-set management: the deployment unit of DPI engines like Snort
   (paper §7.2) is not one RE but hundreds. A ruleset compiles each rule
   once, keeps per-rule binaries and metadata, and scans a stream
   through every rule on the simulated DSA — the paper's model, where
   cores share one compiled RE and iterate the rule set per stream.

   Compilation is all-or-error-list: a production rule set wants to know
   every ill-formed rule, not just the first. *)

module Core = Alveare_arch.Core
module Multicore = Alveare_multicore.Multicore
module Span = Alveare_engine.Semantics

type rule = {
  id : int;
  tag : string;
  pattern : string;
}

type compiled_rule = {
  rule : rule;
  compiled : Compile.compiled;
  overlap : int;
}

(* Aho-Corasick literal index over the union of all rules' required
   literals. One pass over the stream yields, per rule, the candidate
   match-start offsets (literal position minus the literal's offset
   within the pattern); each covered rule then attempts only at its
   candidates. Rules without usable literals are not covered and scan
   with their first-set prefilter instead. *)
type index = {
  ac : Alveare_prefilter.Ac.t;
  refs : (int * int) array;  (* AC pattern idx -> (rule array idx, lit offset) *)
  covered : bool array;      (* per rule: scanned via the candidate path *)
}

type t = {
  rules : compiled_rule array;
  index : index option;
  fused : Combined.t;
}

type compile_error = {
  failed_rule : rule;
  reason : string;
}

let build_index (rules : compiled_rule array) : index option =
  let lits = ref [] and refs = ref [] and n_lits = ref 0 in
  let covered =
    Array.mapi
      (fun i r ->
         match
           Alveare_prefilter.Prefilter.usable_literals
             r.compiled.Compile.prefilter
         with
         | Some l when l.Alveare_prefilter.Prefilter.lits <> [] ->
           List.iter
             (fun s ->
                lits := s :: !lits;
                refs := (i, l.Alveare_prefilter.Prefilter.offset) :: !refs;
                incr n_lits)
             l.Alveare_prefilter.Prefilter.lits;
           true
         | Some _ | None -> false)
      rules
  in
  if !n_lits = 0 then None
  else
    Some
      { ac = Alveare_prefilter.Ac.build (List.rev !lits);
        refs = Array.of_list (List.rev !refs);
        covered }

(* One automaton pass over the stream; candidate start offsets per rule,
   sorted ascending and deduplicated. *)
let candidates_by_rule idx input n_rules =
  let buckets = Array.make n_rules [] in
  Alveare_prefilter.Ac.find_iter idx.ac input (fun ~pat ~pos ->
      let rule_idx, lit_offset = idx.refs.(pat) in
      let start = pos - lit_offset in
      if start >= 0 then buckets.(rule_idx) <- start :: buckets.(rule_idx));
  Array.map (fun l -> Array.of_list (List.sort_uniq compare l)) buckets

(* Slice-parallel AC bucketing (multi-core scans): each worker runs the
   chunked automaton pass over one slice of reporting indices into
   private buckets ({!Alveare_prefilter.Ac.find_iter_chunk} — the exact
   sub-multiset of the full pass owned by that index range). Reporting
   indices ascend across slices, so concatenating in slice order and
   deduplicating reproduces [candidates_by_rule] exactly. *)
let candidates_by_rule_sliced ?workers idx input n_rules ~slices =
  let n = String.length input in
  let slice = (n + slices - 1) / slices in
  let chunked =
    Alveare_exec.Pool.init ?workers slices (fun k ->
        let lo = min n (k * slice) and hi = min n ((k + 1) * slice) in
        let buckets = Array.make n_rules [] in
        Alveare_prefilter.Ac.find_iter_chunk idx.ac input ~lo ~hi
          (fun ~pat ~pos ->
             let rule_idx, lit_offset = idx.refs.(pat) in
             let start = pos - lit_offset in
             if start >= 0 then
               buckets.(rule_idx) <- start :: buckets.(rule_idx));
        buckets)
  in
  Array.init n_rules (fun i ->
      let l =
        Array.fold_left (fun acc b -> List.rev_append b.(i) acc) [] chunked
      in
      Array.of_list (List.sort_uniq compare l))

let compile ?(options = Alveare_ir.Lower.default_options) ?cache ?workers
    ?extended (specs : (string * string) list)
  : (t, compile_error list) result =
  (* Rules compile independently, so the host pool fans them out; the
     shared compile cache (thread-safe) deduplicates repeated patterns
     across rules and across rulesets. *)
  let results =
    Alveare_exec.Pool.map_list ?workers
      (fun (id, (tag, pattern)) ->
         let rule = { id; tag; pattern } in
         match Compile.cached ?cache ~options ?extended pattern with
         | Ok compiled ->
           Ok
             { rule;
               compiled;
               overlap =
                 Multicore.overlap_for_ast compiled.Compile.ast }
         | Error e ->
           Error { failed_rule = rule; reason = Compile.error_message e })
      (List.mapi (fun id spec -> (id, spec)) specs)
  in
  let failures =
    List.filter_map (function Error e -> Some e | Ok _ -> None) results
  in
  if failures <> [] then Error failures
  else
    let rules =
      Array.of_list
        (List.filter_map (function Ok r -> Some r | Error _ -> None) results)
    in
    let index = build_index rules in
    let fused =
      Combined.build
        ~rules:(Array.map (fun r -> r.compiled) rules)
        ~ac:(Option.map (fun i -> (i.ac, i.refs, i.covered)) index)
    in
    Ok { rules; index; fused }

let compile_exn ?options ?cache ?workers ?extended specs =
  match compile ?options ?cache ?workers ?extended specs with
  | Ok t -> t
  | Error (e :: _) ->
    invalid_arg
      (Printf.sprintf "Ruleset.compile: rule %d (%s): %s" e.failed_rule.id
         e.failed_rule.tag e.reason)
  | Error [] -> assert false

(* Per-rule lint diagnostics, carried along by Compile so a ruleset
   build can report its ReDoS-suspect rules without re-parsing. *)
let lint_report (t : t) =
  Array.to_list t.rules
  |> List.filter_map (fun r ->
      match r.compiled.Compile.lint with
      | [] -> None
      | ds -> Some (r.rule, ds))

(* Per-rule precise ambiguity verdicts (every rule appears — an
   admission gate needs the Linear rows too, to count them). *)
let analysis_report (t : t) =
  Array.to_list t.rules
  |> List.map (fun r -> (r.rule, r.compiled.Compile.analysis))

let size t = Array.length t.rules

let rules t = Array.to_list (Array.map (fun r -> r.rule) t.rules)

let find_rule t id =
  match Array.find_opt (fun r -> r.rule.id = id) t.rules with
  | Some r -> Some r.rule
  | None -> None

type hit = {
  hit_rule : rule;
  span : Span.span;
}

type report = {
  hits : hit list;               (* ordered by rule id, then position *)
  total_wall_cycles : int;       (* sum over rules of per-rule wall cycles *)
  seconds : float;               (* modelled DSA time incl. dispatch/rule *)
  per_rule_cycles : (int * int) list;
  total_attempts : int;
  total_offsets_scanned : int;
  total_offsets_pruned : int;
  prefiltered_rules : int;       (* rules scanned via the AC candidate path *)
}

(* Covered rule at [cores > 1]: mirror [Multicore.run]'s slicing (same
   regions, same ownership filter, same dedup, wall cycles = max over
   cores), but attempt only at the rule's global candidate offsets
   restricted to each core's region and rebased into region
   coordinates. Any true match inside a region carries its literal
   inside the region, so the global bucket contains its start — hits
   equal the unfiltered multi-core scan. Runs sequentially: the caller
   already fans rules out over the host pool. *)
let scan_covered_multicore ~cores ~dfa (r : compiled_rule)
    (cands : int array) (input : string) =
  let n = String.length input in
  let slice = (n + cores - 1) / cores in
  let per_core =
    Array.init cores (fun k ->
        let slice_start = min n (k * slice) in
        let slice_stop = min n ((k + 1) * slice) in
        let region_stop = min n (slice_stop + r.overlap) in
        let stats = Core.fresh_stats () in
        let owned =
          if slice_start >= region_stop && not (slice_start = n && k = 0)
          then []
          else begin
            let region =
              String.sub input slice_start (region_stop - slice_start)
            in
            let local =
              Array.fold_right
                (fun c acc ->
                   if c >= slice_start && c < region_stop then
                     (c - slice_start) :: acc
                   else acc)
                cands []
              |> Array.of_list
            in
            Core.find_all_candidates ~stats ~candidates:local
              ~plan:r.compiled.Compile.plan ?dfa
              r.compiled.Compile.program region
            |> List.filter_map (fun (s : Span.span) ->
                let start = s.Span.start + slice_start in
                let stop = s.Span.stop + slice_start in
                if start < slice_stop || (start = n && slice_stop = n) then
                  Some { Span.start; stop }
                else None)
          end
        in
        (owned, stats))
  in
  let matches =
    Array.to_list per_core
    |> List.concat_map fst
    |> List.sort_uniq compare
  in
  let cycles =
    Array.fold_left (fun acc (_, s) -> max acc s.Core.cycles) 0 per_core
  in
  let sum f = Array.fold_left (fun acc (_, s) -> acc + f s) 0 per_core in
  ( r.rule, cycles, matches,
    ( sum (fun s -> s.Core.attempts),
      sum (fun s -> s.Core.offsets_scanned),
      sum (fun s -> s.Core.offsets_pruned) ),
    true )

(* Scan the stream through every rule. Rules run one after another on the
   DSA (the instruction memory holds one compiled RE at a time, §6), so
   total time sums per-rule wall cycles plus one dispatch per rule — the
   modelled DSA cost is unchanged by [workers], which only parallelises
   the host-side simulation of the independent per-rule runs. Per-rule
   results are folded back in rule order, so hits and cycle accounting
   are identical to the sequential scan.

   With [prefilter] (the default) rules whose required literals are in
   the Aho-Corasick index attempt only at candidate offsets (one
   automaton pass over the stream — sliced and merged across workers
   when [cores > 1]); every other rule scans with its first-set skip
   loop. Hits are identical to the unfiltered scan either way.

   With [onepass] (the default) single-core prefiltered scans run the
   fused {!Combined} engine: ONE shared sweep walks the AC automaton
   and dispatches first-set candidates into per-rule machines (product
   overlay threads where the whole plan is backtracking-free), instead
   of one pass per rule. Hits, spans, per-rule cycles and every
   counter are bit-identical to [~onepass:false]; only host scan speed
   changes. Multi-core scans ignore the flag (slicing already shares
   the AC pass). *)
let scan ?(cores = 1) ?workers ?(prefilter = true) ?(dfa = true)
    ?(onepass = true) (t : t) (input : string) : report =
  let dfa_of (r : compiled_rule) =
    if dfa then r.compiled.Compile.dfa else None
  in
  let n_rules = Array.length t.rules in
  let fused =
    if onepass && prefilter && cores = 1 then
      Some (Combined.scan t.fused ~dfa input)
    else None
  in
  let candidates =
    match t.index, fused with
    | Some idx, None when prefilter ->
      if cores = 1 then Some (idx, candidates_by_rule idx input n_rules)
      else
        Some (idx, candidates_by_rule_sliced ?workers idx input n_rules
                ~slices:cores)
    | _ -> None
  in
  let per_rule_results =
    Alveare_exec.Pool.map ?workers
      (fun (i, r) ->
         let from_candidates cands =
           if cores = 1 then begin
             let stats = Core.fresh_stats () in
             let matches =
               Core.find_all_candidates ~stats ~candidates:cands
                 ~plan:r.compiled.Compile.plan ?dfa:(dfa_of r)
                 r.compiled.Compile.program input
             in
             ( r.rule, stats.Core.cycles, matches,
               (stats.Core.attempts, stats.Core.offsets_scanned,
                stats.Core.offsets_pruned),
               true )
           end
           else scan_covered_multicore ~cores ~dfa:(dfa_of r) r cands input
         in
         let residual () =
           let config = Multicore.config ~cores ~overlap:r.overlap () in
           let pf =
             if prefilter then Some r.compiled.Compile.prefilter else None
           in
           let result =
             Multicore.run ?prefilter:pf ~plan:r.compiled.Compile.plan
               ?dfa:(dfa_of r) ~config r.compiled.Compile.program input
           in
           let sum f =
             Array.fold_left
               (fun acc c -> acc + f c.Multicore.stats)
               0 result.Multicore.per_core
           in
           ( r.rule, result.Multicore.cycles, result.Multicore.matches,
             ( sum (fun s -> s.Core.attempts),
               sum (fun s -> s.Core.offsets_scanned),
               sum (fun s -> s.Core.offsets_pruned) ),
             false )
         in
         match r.compiled.Compile.backend with
         | Compile.Derivative eng ->
           (* extended rules the mid-end could not rewrite run on the
              host derivative engine, outside the DSA cycle model:
              they contribute hits but no modelled cycles or attempt
              counters (they are never AC-covered — extended patterns
              yield no usable literals) *)
           ( r.rule, 0, Alveare_derivative.Engine.find_all eng input,
             (0, 0, 0), false )
         | Compile.Isa | Compile.Isa_lowered ->
         (match fused with
         | Some outcomes ->
           (match outcomes.(i) with
            | Combined.Scanned (stats, matches) ->
              ( r.rule, stats.Core.cycles, matches,
                (stats.Core.attempts, stats.Core.offsets_scanned,
                 stats.Core.offsets_pruned),
                false )
            | Combined.Candidates cands -> from_candidates cands
            | Combined.Residual -> residual ())
         | None ->
           (match candidates with
            | Some (idx, cands) when idx.covered.(i) ->
              from_candidates cands.(i)
            | _ -> residual ())))
      (Array.mapi (fun i r -> (i, r)) t.rules)
  in
  let hits =
    Array.to_list per_rule_results
    |> List.concat_map (fun (rule, _, matches, _, _) ->
        List.map (fun span -> { hit_rule = rule; span }) matches)
  in
  let total =
    Array.fold_left
      (fun acc (_, cycles, _, _, _) -> acc + cycles)
      0 per_rule_results
  in
  let sum_stat k =
    Array.fold_left
      (fun acc (_, _, _, stats, _) -> acc + k stats)
      0 per_rule_results
  in
  let seconds =
    (float_of_int total /. Alveare_platform.Calibration.alveare_clock_hz)
    +. (float_of_int (size t)
        *. Alveare_platform.Calibration.alveare_job_overhead_s)
  in
  { hits;
    total_wall_cycles = total;
    seconds;
    per_rule_cycles =
      Array.to_list
        (Array.map
           (fun (rule, cycles, _, _, _) -> (rule.id, cycles))
           per_rule_results);
    total_attempts = sum_stat (fun (a, _, _) -> a);
    total_offsets_scanned = sum_stat (fun (_, s, _) -> s);
    total_offsets_pruned = sum_stat (fun (_, _, p) -> p);
    prefiltered_rules =
      Array.fold_left
        (fun acc (_, _, _, _, ac) -> if ac then acc + 1 else acc)
        0 per_rule_results }

let hits_for report id =
  List.filter (fun h -> h.hit_rule.id = id) report.hits
