(* Compiler driver (paper §5): pattern -> AST -> IR -> ISA program.

   The result bundles every stage so tools (disassembler, simulator,
   harness) can inspect intermediate forms, plus the statistics the
   evaluation reports (code size excluding EoR, operator histogram).

   Extended patterns (intersection, complement, lookarounds) route
   through {!Alveare_ir.Elim} BEFORE the optimizer: when the rewrite
   produces an equivalent plain AST the normal ISA pipeline serves it
   ([Isa_lowered]); otherwise the pattern is compiled to a derivative
   matcher ([Derivative]) and the ISA fields hold a placeholder program
   (lowered from the empty pattern) that dispatch never executes —
   every execution surface checks [backend] first. *)

type backend =
  | Isa
      (* plain POSIX-ERE source; the normal pipeline *)
  | Isa_lowered
      (* extended source rewritten to an equivalent plain AST
         (priority-preserving) and served by the ISA *)
  | Derivative of Alveare_derivative.Engine.t
      (* served natively by the derivative engine; the ISA fields are a
         placeholder *)

type compiled = {
  pattern : string;
  ast : Alveare_frontend.Ast.t;         (* normalised *)
  ir : Alveare_ir.Ir.t;
  program : Alveare_isa.Program.t;
  plan : Alveare_arch.Plan.t;           (* pre-decoded execution plan *)
  options : Alveare_ir.Lower.options;
  lint : Alveare_analysis.Lint.diagnostic list;
  analysis : Alveare_analysis.Ambiguity.t;
  safe_fragments : (int * int) list;
  dfa : Alveare_arch.Dfa_overlay.family option;
  prefilter : Alveare_prefilter.Prefilter.t;
  backend : backend;
}

type error =
  | Frontend_error of string
  | Backend_error of Alveare_backend.Emit.error
  | Verify_error of Alveare_isa.Verify.violation list

let error_message = function
  | Frontend_error m -> m
  | Backend_error e -> Alveare_backend.Emit.error_message e
  | Verify_error vs ->
    "emitted program failed verification (compiler bug): "
    ^ String.concat "; "
        (List.map Alveare_isa.Verify.violation_message vs)

let merge_optimize options = function
  | None -> options
  | Some optimize -> { options with Alveare_ir.Lower.optimize }

let compile_plain ~options ~pattern ~verify ~lint ~analysis ~backend ast
  : (compiled, error) result =
  (* The mid-end rewrite pass runs here, not inside [Lower.lower], so
     the driver can apply a never-worse guard: the optimised and
     unoptimised ASTs are both lowered and the smaller program wins
     (ties go to the optimised form — same size, fewer attempt cycles
     after dedup/dead-branch elimination). The AST stored in [compiled]
     is the one the binary was actually lowered from, so the oracle in
     the differential harness exercises exactly the optimised form. *)
  let lower_raw =
    Alveare_ir.Lower.lower
      ~options:{ options with Alveare_ir.Lower.optimize = false }
  in
  let ast, ir =
    if options.Alveare_ir.Lower.optimize then begin
      let opt_ast = Alveare_ir.Opt.optimize ast in
      let opt_ir = lower_raw opt_ast in
      if Alveare_frontend.Ast.equal opt_ast ast then (ast, opt_ir)
      else begin
        let raw_ir = lower_raw ast in
        if
          Alveare_ir.Ir.instruction_count opt_ir
          <= Alveare_ir.Ir.instruction_count raw_ir
        then (opt_ast, opt_ir)
        else (ast, raw_ir)
      end
    end
    else (ast, lower_raw ast)
  in
  (* Prefilter facts come from the same AST the program is lowered
     from, so they describe exactly the language the binary matches. *)
  let prefilter = Alveare_prefilter.Prefilter.analyze ast in
  match Alveare_backend.Emit.program_of_ir ir with
  | Error e -> Error (Backend_error e)
  | Ok program ->
    (* The plan is lowered once here, behind the post-emission
       self-check, so every consumer of a [compiled] executes without
       re-validating or re-decoding the binary. *)
    let finish () =
      let plan = Alveare_arch.Plan.of_program_unchecked program in
      (* Safe fragments come from the emitted program itself (not the
         source analysis), so they hold for bare-AST compiles too and
         describe exactly the binary a lazy-DFA overlay would run. *)
      let safe_fragments =
        Alveare_analysis.Ambiguity.program_fragments program
      in
      (* The overlay family is built against this exact plan value;
         Core's [?dfa] guard checks that correspondence physically. *)
      let dfa =
        Alveare_arch.Dfa_overlay.family ~fragments:safe_fragments plan
      in
      Ok { pattern; ast; ir; program; plan; options; lint; analysis;
           safe_fragments; dfa; prefilter; backend }
    in
    (* Post-emission self-check: the verifier accepting every program
       the backend emits is a compiler invariant, so a rejection here
       is a bug in emission, not in the pattern. *)
    if verify then begin
      match Alveare_isa.Verify.run program with
      | Ok _ -> finish ()
      | Error vs -> Error (Verify_error vs)
    end
    else finish ()

(* Serve an extended AST with the derivative engine. The ISA fields
   hold a placeholder lowered from the empty pattern — never executed,
   since every dispatch site checks [backend] first — but keep the
   [compiled] record total so the tooling (disassembler, stats, cache)
   works unmodified. The prefilter is analysed from the real AST, so
   its facts stay honest for the pattern actually served. *)
let serve_derivative ~options ~pattern ~verify ~lint ~analysis ast
  : (compiled, error) result =
  let engine = Alveare_derivative.Engine.of_ast ast in
  match
    compile_plain ~options ~pattern ~verify ~lint ~analysis ~backend:Isa
      Alveare_frontend.Ast.Empty
  with
  | Error _ as e -> e
  | Ok c ->
    Ok { c with ast; backend = Derivative engine;
         prefilter = Alveare_prefilter.Prefilter.analyze ast }

let compile_ast ?(options = Alveare_ir.Lower.default_options) ?optimize
    ?(pattern = "<ast>") ?(verify = true) ?(lint = [])
    ?(analysis = Alveare_analysis.Ambiguity.unanalyzed) ast
  : (compiled, error) result =
  let options = merge_optimize options optimize in
  let ast = Alveare_frontend.Desugar.normalize ast in
  if not (Alveare_frontend.Ast.has_extended ast) then
    compile_plain ~options ~pattern ~verify ~lint ~analysis ~backend:Isa ast
  else
    (* extended operators route through Elim BEFORE the optimizer: the
       rewrite either erases them (priority-preserving, so the ISA
       serves the pattern) or the derivative engine takes over — no
       extended pattern is ever rejected as unsupported *)
    (match Alveare_ir.Elim.plainify ast with
     | Alveare_ir.Elim.Plain plain ->
       compile_plain ~options ~pattern ~verify ~lint ~analysis
         ~backend:Isa_lowered plain
     | Alveare_ir.Elim.Extended simplified ->
       serve_derivative ~options ~pattern ~verify ~lint ~analysis simplified
     | Alveare_ir.Elim.Dead ->
       (* the language is empty; the derivative engine on the original
          AST reports exactly that (no AST literal denotes ⊥) *)
       serve_derivative ~options ~pattern ~verify ~lint ~analysis ast)

let compile ?options ?optimize ?verify ?(extended = false) pattern
  : (compiled, error) result =
  match Alveare_frontend.Parser.parse_spanned_result ~extended pattern with
  | Error m -> Error (Frontend_error m)
  | Ok spanned ->
    let lint, analysis = Alveare_analysis.Lint.full spanned in
    compile_ast ?options ?optimize ~pattern ?verify ~lint ~analysis
      (Alveare_frontend.Spanned.strip spanned)

let compile_exn ?options ?optimize ?verify ?extended pattern =
  match compile ?options ?optimize ?verify ?extended pattern with
  | Ok c -> c
  | Error e -> invalid_arg ("Compile.compile: " ^ error_message e)

(* --- Compiled-ruleset cache ------------------------------------------- *)

(* Rulesets and the evaluation harness compile the same patterns over
   and over (every engine cell of Fig. 4/5 recompiles its suite; rule
   sets share patterns across scans). A shared thread-safe LRU keyed on
   pattern source + compile options amortises that: RE2 shares compiled
   Progs across threads the same way. Only successful compilations are
   cached — errors are cheap to rediscover and keep the cache dense. *)

type cache = compiled Alveare_exec.Cache.t

let create_cache ?capacity () : cache = Alveare_exec.Cache.create ?capacity ()

let default_cache : cache = create_cache ~capacity:1024 ()

(* Key = compile options rendered unambiguously + the pattern source.
   Every options field participates (the extended-dialect flag
   included: the same source can parse differently under the two
   dialects): two compilations agree on the key iff they would produce
   the same binary. *)
let cache_key ~(options : Alveare_ir.Lower.options) ~extended pattern =
  Printf.sprintf "%c:%d:%b:%b:%s"
    (match options.Alveare_ir.Lower.mode with
     | Alveare_ir.Lower.Advanced -> 'a'
     | Alveare_ir.Lower.Minimal -> 'm')
    options.Alveare_ir.Lower.alphabet_size options.Alveare_ir.Lower.optimize
    extended pattern

let cached ?(cache = default_cache) ?(options = Alveare_ir.Lower.default_options)
    ?optimize ?verify ?(extended = false) pattern : (compiled, error) result =
  let options = merge_optimize options optimize in
  let key = cache_key ~options ~extended pattern in
  match Alveare_exec.Cache.find_opt cache key with
  | Some c -> Ok c
  | None ->
    (match compile ~options ?verify ~extended pattern with
     | Ok c -> Alveare_exec.Cache.add cache key c; Ok c
     | Error _ as e -> e)

let cached_exn ?cache ?options ?optimize ?extended pattern =
  match cached ?cache ?options ?optimize ?extended pattern with
  | Ok c -> c
  | Error e -> invalid_arg ("Compile.cached: " ^ error_message e)

let cache_stats (cache : cache) = Alveare_exec.Cache.stats cache

(* Code size as in Table 2: instructions excluding the EoR terminator. *)
let code_size c = Alveare_isa.Program.code_size c.program

type stats = {
  code_size : int;
  total_instructions : int;
  histogram : Alveare_isa.Program.histogram;
  binary_bytes : int;
  ast_size : int;
  ast_depth : int;
}

let stats c =
  { code_size = code_size c;
    total_instructions = Alveare_isa.Program.length c.program;
    histogram = Alveare_isa.Program.histogram c.program;
    binary_bytes = Alveare_isa.Binary.size_of_program c.program;
    ast_size = Alveare_frontend.Ast.size c.ast;
    ast_depth = Alveare_frontend.Ast.depth c.ast }

let disassemble c = Alveare_isa.Program.to_string c.program

let to_binary ?strict c = Alveare_isa.Binary.to_bytes ?strict c.program

let pp_stats ppf s =
  Fmt.pf ppf
    "code size (w/o EoR): %d@.total instructions: %d@.binary bytes: %d@.\
     AST nodes: %d, depth %d@.operators: AND %d, OR %d, RANGE %d, NOT %d, \
     OPEN %d, ')' %d, QUANT %d, QUANT? %d, ')|' %d@."
    s.code_size s.total_instructions s.binary_bytes s.ast_size s.ast_depth
    s.histogram.n_base_and s.histogram.n_base_or s.histogram.n_base_range
    s.histogram.n_not s.histogram.n_open s.histogram.n_close
    s.histogram.n_quant_greedy s.histogram.n_quant_lazy s.histogram.n_alt_close
