(** Streaming through the two-level data memory (paper §6 (A)): streams
    longer than the on-chip buffer are processed chunk by chunk with an
    overlap carry, double-buffering the DMA fill against matching.
    Compute and load cycles are reported separately (the paper's KPI
    excludes loading). *)

type config = {
  buffer_bytes : int;
  overlap : int;
  cores : int;
  core_config : Alveare_arch.Core.config;
  load_bytes_per_cycle : float;
}

val default_buffer_bytes : int
(** 64 KiB — the BRAM-budget-sized local buffer. *)

val default_load_bytes_per_cycle : float
(** 8.0 bytes/cycle (~2.4 GB/s AXI at 300 MHz; mirrored by
    [Calibration.alveare_load_bytes_per_cycle]). *)

val config :
  ?buffer_bytes:int ->
  ?overlap:int ->
  ?cores:int ->
  ?core_config:Alveare_arch.Core.config ->
  ?load_bytes_per_cycle:float ->
  unit ->
  config

type result = {
  matches : Alveare_engine.Semantics.span list;
  chunks : int;
  compute_cycles : int;
  load_cycles : int;
  wall_cycles : int;  (** first fill + per-chunk max(compute, next fill) *)
}

val run :
  ?workers:int -> ?plan:Alveare_arch.Plan.t ->
  ?dfa:Alveare_arch.Dfa_overlay.family -> config:config ->
  Alveare_isa.Program.t -> string -> result
(** [workers] fans the per-chunk compute out over host domains (via
    {!Alveare_exec.Pool}); the double-buffered cycle accounting is folded
    sequentially over the in-order chunk results, so matches and every
    cycle count are identical to the sequential run for any value.
    Default 1 = sequential. [plan] as in {!Multicore.run}: without one,
    the program is validated and lowered once per stream, never per
    chunk. [dfa] as in {!Multicore.run}; the family's transition table
    persists across chunk refills, so a resumed stream keeps the states
    earlier chunks already built. *)

val find_all :
  ?buffer_bytes:int -> ?overlap:int -> ?cores:int -> ?workers:int ->
  ?plan:Alveare_arch.Plan.t -> ?dfa:Alveare_arch.Dfa_overlay.family ->
  Alveare_isa.Program.t -> string -> Alveare_engine.Semantics.span list
