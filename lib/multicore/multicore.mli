(** Multi-core scale-out (paper §6): N independent cores with private
    memories scan slices of the stream for the same compiled RE. Matches
    are attributed to the core owning their start offset; each core scans
    [overlap] bytes past its slice so boundary matches complete. Matches
    longer than the overlap window can straddle slices and be truncated —
    the inherent approximation of the paper's divide-and-conquer. *)

module Core = Alveare_arch.Core
module Span = Alveare_engine.Semantics

type config = {
  cores : int;
  overlap : int;
  core_config : Core.config;
}

val default_overlap : int

val config :
  ?cores:int -> ?overlap:int -> ?core_config:Core.config -> unit -> config

val overlap_for_ast : ?cap:int -> Alveare_frontend.Ast.t -> int
(** Overlap window from the pattern's bounded match length, or [cap]. *)

type core_result = {
  owned : Span.span list;
  stats : Core.stats;
  slice_start : int;
  slice_stop : int;
}

type result = {
  matches : Span.span list;   (** deduplicated, sorted *)
  cycles : int;               (** wall-clock = max over cores *)
  total_cycles : int;         (** sum over cores *)
  per_core : core_result array;
}

val run :
  ?workers:int -> ?prefilter:Alveare_prefilter.Prefilter.t ->
  ?plan:Alveare_arch.Plan.t -> ?dfa:Alveare_arch.Dfa_overlay.family ->
  config:config ->
  Alveare_isa.Program.t -> string -> result
(** [workers] parallelises the per-core simulations on host domains
    (via {!Alveare_exec.Pool}); results are identical to the sequential
    run for any value. Default 1 = sequential. [prefilter] applies the
    first-set skip loop inside every core's slice scan (sound: the test
    is per-byte and position-independent); matches are unchanged.
    [plan] supplies a pre-decoded execution plan (e.g. from
    {!Alveare_compiler}'s [compiled.plan]); without one, the program is
    validated and lowered once per [run], never per slice. Plans are
    immutable and shared across worker domains. [dfa] engages the
    lazy-DFA overlay inside every slice scan (must match [plan], as in
    {!Alveare_arch.Core}); the family is domain-shareable — each worker
    domain lazily materializes its own transition table. *)

val find_all :
  ?cores:int -> ?overlap:int -> ?core_config:Core.config -> ?workers:int ->
  ?prefilter:Alveare_prefilter.Prefilter.t -> ?plan:Alveare_arch.Plan.t ->
  ?dfa:Alveare_arch.Dfa_overlay.family ->
  Alveare_isa.Program.t -> string -> Span.span list
