(* Streaming through the two-level data memory (paper §6 (A)): the
   on-chip local buffer holds one data chunk at a time and continuously
   feeds the execution core, so a stream longer than the buffer is
   processed chunk by chunk. Each chunk carries [overlap] bytes of the
   previous one so matches crossing a refill boundary complete (bounded
   by the window, as in the multi-core split).

   Cycle accounting models double buffering: while the cores match chunk
   k, the DMA fills the buffer with chunk k+1 at
   [Calibration.alveare_load_bytes_per_cycle]; a chunk therefore costs
   max(compute, next-load), after paying the first fill up front. The
   paper's KPI excludes loading ("matching time after memories
   loading"), so compute and load cycles are also reported separately. *)

module Core = Alveare_arch.Core
module Span = Alveare_engine.Semantics

type config = {
  buffer_bytes : int;   (* on-chip chunk capacity *)
  overlap : int;        (* carry-over window across refills *)
  cores : int;
  core_config : Core.config;
  load_bytes_per_cycle : float; (* DMA fill rate *)
}

let default_buffer_bytes = 64 * 1024

(* Same figure as Calibration.alveare_load_bytes_per_cycle (~2.4 GB/s AXI
   at 300 MHz); duplicated here because the platform layer builds on top
   of this one. *)
let default_load_bytes_per_cycle = 8.0

let config ?(buffer_bytes = default_buffer_bytes) ?(overlap = Multicore.default_overlap)
    ?(cores = 1) ?(core_config = Core.default_config)
    ?(load_bytes_per_cycle = default_load_bytes_per_cycle) () =
  if buffer_bytes <= 0 then invalid_arg "Stream_runner.config: buffer_bytes";
  if overlap < 0 then invalid_arg "Stream_runner.config: overlap";
  if overlap >= buffer_bytes then
    invalid_arg "Stream_runner.config: overlap must be below the buffer size";
  if load_bytes_per_cycle <= 0.0 then
    invalid_arg "Stream_runner.config: load_bytes_per_cycle";
  { buffer_bytes; overlap; cores; core_config; load_bytes_per_cycle }

type result = {
  matches : Span.span list;
  chunks : int;
  compute_cycles : int;   (* sum of per-chunk matching cycles *)
  load_cycles : int;      (* sum of per-chunk buffer fills *)
  wall_cycles : int;      (* double-buffered: first fill + per-chunk max *)
}

let load_cycles_of_bytes ~config bytes =
  int_of_float (ceil (float_of_int bytes /. config.load_bytes_per_cycle))

let run ?(workers = 1) ?plan ?dfa ~config (program : Alveare_isa.Program.t)
    (input : string) : result =
  (* Validate and lower once per stream, not once per chunk. *)
  let plan =
    match plan with
    | Some p -> p
    | None -> Alveare_arch.Plan.of_program program
  in
  let n = String.length input in
  let payload = config.buffer_bytes - config.overlap in
  let mc_config =
    Multicore.config ~cores:config.cores ~overlap:config.overlap
      ~core_config:config.core_config ()
  in
  (* Chunk boundaries are a pure function of the stream length, so they
     are enumerated up front; each chunk's compute (the expensive part)
     is independent and fans out over the host pool, while the
     double-buffered wall-cycle accounting — which chains chunk k's
     compute against chunk k+1's load — stays a sequential fold over the
     in-order results. An empty stream still yields one empty chunk so
     nullable patterns report their match. *)
  let rec boundaries pos acc =
    if pos >= n then List.rev acc
    else
      let slice_start = max 0 (pos - config.overlap) in
      let slice_stop = min n (pos + payload) in
      boundaries slice_stop ((slice_start, slice_stop) :: acc)
  in
  let bounds = if n = 0 then [ (0, 0) ] else boundaries 0 [] in
  let chunk_results =
    Alveare_exec.Pool.map_list ~workers
      (fun (slice_start, slice_stop) ->
         let slice = String.sub input slice_start (slice_stop - slice_start) in
         (* The overlay family (and so its lazily built transition
            table) persists across chunks: a refill resumes on whatever
            table the previous chunks already built. *)
         let mc = Multicore.run ~plan ?dfa ~config:mc_config program slice in
         (* A chunk owns matches starting at or after its slice start but
            more than [overlap] before its slice end: those near the end
            may not fit the buffer and are re-seen (complete) by the next
            chunk's carry. The cutoffs tile the stream exactly:
            [0, s0-W) [s0-W, s1-W) ... [sk-W, n]. *)
         let cutoff =
           if slice_stop = n then n + 1 else slice_stop - config.overlap
         in
         let owned =
           List.filter_map
             (fun (s : Span.span) ->
                let start = s.Span.start + slice_start in
                let stop = s.Span.stop + slice_start in
                if start >= slice_start && start < cutoff then
                  Some { Span.start; stop }
                else None)
             mc.Multicore.matches
         in
         let chunk_load =
           if n = 0 then 0
           else load_cycles_of_bytes ~config (slice_stop - slice_start)
         in
         (owned, mc.Multicore.cycles, chunk_load))
      bounds
  in
  let chunks, matches, compute, load, wall, prev_compute =
    List.fold_left
      (fun (chunks, matches, compute, load, wall, prev_compute)
        (owned, chunk_compute, chunk_load) ->
        let wall =
          if chunks = 0 then wall + chunk_load (* first fill is exposed *)
          else wall + max prev_compute chunk_load
        in
        ( chunks + 1,
          List.rev_append owned matches,
          compute + chunk_compute,
          load + chunk_load,
          wall,
          chunk_compute ))
      (0, [], 0, 0, 0, 0) chunk_results
  in
  (* drain: the last chunk's compute was not yet added to wall *)
  let wall = wall + prev_compute in
  { matches = List.sort_uniq compare matches;
    chunks;
    compute_cycles = compute;
    load_cycles = load;
    wall_cycles = wall }

let find_all ?buffer_bytes ?overlap ?cores ?workers ?plan ?dfa program input =
  (run ?workers ?plan ?dfa ~config:(config ?buffer_bytes ?overlap ?cores ())
     program input)
    .matches
