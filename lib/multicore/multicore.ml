(* Multi-core scale-out (paper §6 "Scaling Out to a Multi-Core"):
   independent cores with private instruction/data memories run the same
   compiled RE over different portions of the stream — divide and conquer
   at the data level.

   Each core owns an equal slice of the input and scans an extended
   region that overlaps the next slice by [overlap] bytes, so matches
   starting near a boundary can complete; a match is attributed to the
   core that owns its start offset, which deduplicates the overlap.
   Wall-clock cycles are the maximum over the cores (they run in
   parallel); per-core and aggregate statistics are also reported. *)

module Core = Alveare_arch.Core
module Span = Alveare_engine.Semantics

type config = {
  cores : int;
  overlap : int;          (* boundary completion window, bytes *)
  core_config : Core.config;
}

let default_overlap = 256

let config ?(cores = 1) ?(overlap = default_overlap)
    ?(core_config = Core.default_config) () =
  if cores < 1 then invalid_arg "Multicore.config: cores must be positive";
  if overlap < 0 then invalid_arg "Multicore.config: negative overlap";
  { cores; overlap; core_config }

(* Overlap window sized from the pattern when its match length is
   bounded; unbounded patterns fall back to [cap]. *)
let overlap_for_ast ?(cap = 4096) ast =
  match Alveare_frontend.Ast.max_match_length ast with
  | Some len -> min len cap
  | None -> cap

type core_result = {
  owned : Span.span list;  (* matches attributed to this core *)
  stats : Core.stats;
  slice_start : int;
  slice_stop : int;        (* exclusive ownership bound *)
}

type result = {
  matches : Span.span list;
  cycles : int;                   (* parallel wall-clock = max over cores *)
  total_cycles : int;             (* sum over cores (energy-relevant) *)
  per_core : core_result array;
}

let run ?(workers = 1) ?prefilter ?plan ?dfa ~config
    (program : Alveare_isa.Program.t) (input : string) : result =
  (* One plan for the whole run: lowering (and, for a raw program, the
     validity check) happens once here instead of once per slice. The
     plan is immutable, so sharing it across worker domains is safe;
     scratch state is per-call inside [Core.find_all]. *)
  let plan =
    match plan with
    | Some p -> p
    | None -> Alveare_arch.Plan.of_program program
  in
  let n = String.length input in
  let cores = config.cores in
  let slice = (n + cores - 1) / cores in
  (* The simulated cores are independent (private memories, disjoint
     owned regions), so the host runs them on a Domain pool. Each task
     allocates its own stats and only reads [program]/[input]; results
     land at their core index, so any [workers] count reproduces the
     sequential run exactly. *)
  let per_core =
    Alveare_exec.Pool.init ~workers cores (fun k ->
        let slice_start = min n (k * slice) in
        let slice_stop = min n ((k + 1) * slice) in
        let region_stop = min n (slice_stop + config.overlap) in
        let stats = Core.fresh_stats () in
        let owned =
          if slice_start >= region_stop && not (slice_start = n && k = 0) then []
          else begin
            let region = String.sub input slice_start (region_stop - slice_start) in
            (* The prefilter is position-independent (a per-byte first-set
               test), so applying it per slice is sound. The dfa family is
               domain-shareable: each worker domain materializes its own
               transition table via domain-local storage. *)
            Core.find_all ?prefilter ~plan ?dfa ~config:config.core_config
              ~stats program region
            |> List.filter_map (fun (s : Span.span) ->
                let start = s.Span.start + slice_start in
                let stop = s.Span.stop + slice_start in
                (* a match starting exactly at the end of the stream (an
                   empty match at offset n) belongs to the core whose
                   slice ends there *)
                if start < slice_stop || (start = n && slice_stop = n) then
                  Some { Span.start; stop }
                else None)
          end
        in
        { owned; stats; slice_start; slice_stop })
  in
  let matches =
    Array.to_list per_core
    |> List.concat_map (fun c -> c.owned)
    |> List.sort_uniq compare
  in
  let cycles =
    Array.fold_left (fun acc c -> max acc c.stats.Core.cycles) 0 per_core
  in
  let total_cycles =
    Array.fold_left (fun acc c -> acc + c.stats.Core.cycles) 0 per_core
  in
  { matches; cycles; total_cycles; per_core }

let find_all ?(cores = 1) ?overlap ?core_config ?workers ?prefilter ?plan
    ?dfa program input =
  (run ?workers ?prefilter ?plan ?dfa
     ~config:(config ~cores ?overlap ?core_config ())
     program input)
    .matches
