(** The long-lived matching daemon: a Unix-domain / TCP accept loop with
    per-connection reader threads, a {e bounded} admission queue drained
    by a fixed worker-thread pool, and graceful shutdown.

    Load discipline — shed, don't stall: a request arriving while the
    admission queue is full is answered immediately with the
    [overloaded] error code by the reader thread; it never waits for a
    worker and the connection stays usable. Admitted requests are
    stamped with their absolute deadline ([deadline_ms] from the wire)
    and answered [deadline-exceeded] if a worker only reaches them after
    it passed. Connections idle past the read timeout are closed.

    {!stop} is the Ctrl-C path: stop accepting, refuse new requests with
    [shutting-down], let the workers drain every already-admitted
    request (their responses are written out), then close connections
    and join every thread. Idempotent. *)

type addr =
  | Unix_sock of string  (** filesystem path; replaced if already bound *)
  | Tcp of string * int  (** interface, port; port 0 picks a free port *)

type config = {
  addr : addr;
  queue_capacity : int;  (** admitted-but-unstarted requests, ≥ 1 *)
  workers : int;  (** worker threads draining the queue, ≥ 1 *)
  idle_timeout : float;  (** seconds a connection may sit idle *)
  max_frame : int;  (** decoder frame cap, {!Protocol.decoder} *)
  service : Service.config;
}

val default_config : config
(** queue 64, 4 workers, 30 s idle timeout, default frame cap and
    service config. *)

type t

val start : ?metrics:Metrics.t -> config -> t
(** Bind, listen, spawn the accept loop and the worker pool. Raises
    [Unix.Unix_error] when the address cannot be bound. SIGPIPE is set
    to ignore (a dying peer must surface as [EPIPE], not kill the
    daemon). *)

val port : t -> int option
(** The bound TCP port ([Tcp (_, 0)] resolves to a real one); [None]
    for Unix sockets. *)

val metrics : t -> Metrics.t
val service : t -> Service.t

val queue_depth : t -> int
(** Admitted requests currently waiting for a worker. *)

val stop : t -> unit
(** Graceful shutdown: drain, flush, join. Safe to call more than once
    and from a signal-driven thread. *)

(** {1 Test hooks} *)

val pause : t -> unit
(** Stop workers from taking new queue entries (in-flight requests
    finish). With the workers paused, admission behaviour is
    deterministic: exactly [queue_capacity] requests queue, the rest
    shed — how the overload tests saturate the queue without timing
    races. {!stop} overrides a pause so shutdown always drains. *)

val resume : t -> unit
