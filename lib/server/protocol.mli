(** Wire protocol of the ALVEARE matching service — a pure,
    length-prefixed binary codec, deliberately free of any socket or
    thread dependency so it is unit- and fuzz-testable in isolation.

    Every message travels as one frame:

    {v
      u32 LE  payload length N   (1 <= N <= max_frame)
      N bytes payload
    v}

    and every payload starts with a one-byte message tag followed by a
    u32 LE request id the client chooses for correlation (responses echo
    it; decoder-level failures that cannot be attributed to a request
    use id 0). Strings are u32 LE byte length + raw bytes; counters too
    large for 32 bits (simulated cycles) travel as u64 LE.

    The {!decoder} is incremental and {e total}: [feed] it arbitrary
    bytes — truncated, bit-flipped, garbage — and {!next_request} /
    {!next_response} either produce a well-formed message, ask for more
    input, or report corruption; they never raise. Corruption is sticky:
    framing is lost for good, the connection must be closed. *)

(** {1 Messages} *)

type lint_diag = {
  severity : [ `Info | `Warning ];
  kind : string;  (** stable kebab-case id, {!Alveare_analysis.Lint.kind_name} *)
  left : int;  (** byte span into the pattern, inclusive *)
  right : int;  (** exclusive *)
  message : string;
}

type request =
  | Health of { id : int }
  | Compile of { id : int; pattern : string; allow_risky : bool }
      (** compile + analyse only; [allow_risky] skips the lint gate *)
  | Scan of {
      id : int;
      pattern : string;
      input : string;
      deadline_ms : int;  (** 0 = no deadline *)
      allow_risky : bool;
    }
  | Ruleset_scan of {
      id : int;
      rules : (string * string) list;  (** (tag, pattern) *)
      input : string;
      deadline_ms : int;
      allow_risky : bool;
    }
  | Stats of { id : int }

type scan_stats = {
  attempts : int;
  offsets_scanned : int;
  offsets_pruned : int;
  cycles : int;  (** simulated DSA cycles *)
}

type error_code =
  | Bad_frame  (** framing lost: undecodable frame; connection closes *)
  | Parse_error  (** pattern (or a ruleset rule) failed to compile *)
  | Lint_rejected
      (** ReDoS-flagged pattern refused by the admission lint gate; resend
          with [allow_risky] to override *)
  | Overloaded  (** admission queue full — request shed, never queued *)
  | Deadline_exceeded
  | Too_large  (** input or frame over the server's configured limit *)
  | Shutting_down
  | Internal

type response =
  | Health_ok of { id : int; version : string }
  | Compiled of {
      id : int;
      code_size : int;
      binary_bytes : int;
      lint : lint_diag list;
    }
  | Matches of { id : int; spans : (int * int) list; stats : scan_stats }
  | Ruleset_matches of {
      id : int;
      hits : (int * string * int * int) list;
          (** (rule id, tag, start, stop) *)
      stats : scan_stats;
    }
  | Stats_reply of { id : int; entries : (string * float) list }
  | Error of { id : int; code : error_code; message : string }

val request_id : request -> int
val response_id : response -> int

val error_code_name : error_code -> string
(** Stable kebab-case identifier, e.g. ["overloaded"] — the contract
    clients script against. *)

val pp_request : request Fmt.t
val pp_response : response Fmt.t

(** {1 Encoding} *)

val default_max_frame : int
(** 64 MiB. *)

val encode_request : request -> string
(** The complete frame, length prefix included. Request ids are
    truncated to 32 bits. *)

val encode_response : response -> string

(** {1 Incremental decoding} *)

type decoder

val decoder : ?max_frame:int -> unit -> decoder
(** [max_frame] bounds the accepted payload length (default
    {!default_max_frame}); a length prefix beyond it — e.g. garbage read
    as a huge u32 — is corruption, not an allocation. *)

val feed : decoder -> string -> unit
(** Append raw bytes. Cheap; buffered until a full frame is available. *)

val buffered : decoder -> int
(** Bytes fed but not yet consumed by a decoded frame. *)

type 'a event =
  | Frame of 'a
  | Await  (** no complete frame buffered — feed more bytes *)
  | Corrupt of string
      (** undecodable frame; sticky — every later call reports it too *)

val next_request : decoder -> request event
(** Never raises, whatever was fed. *)

val next_response : decoder -> response event
