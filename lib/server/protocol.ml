(* Wire protocol: pure codec for the matching service. See the .mli for
   the frame grammar. Two properties carry the whole design:

   - encode/decode round-trip exactly (locked down by test_protocol.ml's
     structural-equality checks), and
   - the decoder is total: every byte sequence — truncations, bit flips,
     unstructured garbage — lands in [Frame], [Await] or [Corrupt],
     never an exception. All reads are bounds-checked against the
     payload, element counts are sanity-checked against the bytes that
     could possibly back them, and a defensive catch-all turns any
     escaped exception into sticky corruption rather than a crash in a
     reader thread. *)

type lint_diag = {
  severity : [ `Info | `Warning ];
  kind : string;
  left : int;
  right : int;
  message : string;
}

type request =
  | Health of { id : int }
  | Compile of { id : int; pattern : string; allow_risky : bool }
  | Scan of {
      id : int;
      pattern : string;
      input : string;
      deadline_ms : int;
      allow_risky : bool;
    }
  | Ruleset_scan of {
      id : int;
      rules : (string * string) list;
      input : string;
      deadline_ms : int;
      allow_risky : bool;
    }
  | Stats of { id : int }

type scan_stats = {
  attempts : int;
  offsets_scanned : int;
  offsets_pruned : int;
  cycles : int;
}

type error_code =
  | Bad_frame
  | Parse_error
  | Lint_rejected
  | Overloaded
  | Deadline_exceeded
  | Too_large
  | Shutting_down
  | Internal

type response =
  | Health_ok of { id : int; version : string }
  | Compiled of {
      id : int;
      code_size : int;
      binary_bytes : int;
      lint : lint_diag list;
    }
  | Matches of { id : int; spans : (int * int) list; stats : scan_stats }
  | Ruleset_matches of {
      id : int;
      hits : (int * string * int * int) list;
      stats : scan_stats;
    }
  | Stats_reply of { id : int; entries : (string * float) list }
  | Error of { id : int; code : error_code; message : string }

let request_id = function
  | Health { id } | Compile { id; _ } | Scan { id; _ }
  | Ruleset_scan { id; _ } | Stats { id } ->
    id

let response_id = function
  | Health_ok { id; _ } | Compiled { id; _ } | Matches { id; _ }
  | Ruleset_matches { id; _ } | Stats_reply { id; _ } | Error { id; _ } ->
    id

let error_code_name = function
  | Bad_frame -> "bad-frame"
  | Parse_error -> "parse-error"
  | Lint_rejected -> "lint-rejected"
  | Overloaded -> "overloaded"
  | Deadline_exceeded -> "deadline-exceeded"
  | Too_large -> "too-large"
  | Shutting_down -> "shutting-down"
  | Internal -> "internal"

let error_code_byte = function
  | Bad_frame -> 1
  | Parse_error -> 2
  | Lint_rejected -> 3
  | Overloaded -> 4
  | Deadline_exceeded -> 5
  | Too_large -> 6
  | Shutting_down -> 7
  | Internal -> 8

let error_code_of_byte = function
  | 1 -> Some Bad_frame
  | 2 -> Some Parse_error
  | 3 -> Some Lint_rejected
  | 4 -> Some Overloaded
  | 5 -> Some Deadline_exceeded
  | 6 -> Some Too_large
  | 7 -> Some Shutting_down
  | 8 -> Some Internal
  | _ -> None

let pp_request ppf = function
  | Health { id } -> Fmt.pf ppf "health#%d" id
  | Compile { id; pattern; allow_risky } ->
    Fmt.pf ppf "compile#%d %S%s" id pattern
      (if allow_risky then " (risky ok)" else "")
  | Scan { id; pattern; input; deadline_ms; _ } ->
    Fmt.pf ppf "scan#%d %S over %d bytes%s" id pattern (String.length input)
      (if deadline_ms > 0 then Printf.sprintf " deadline %dms" deadline_ms
       else "")
  | Ruleset_scan { id; rules; input; _ } ->
    Fmt.pf ppf "ruleset-scan#%d %d rules over %d bytes" id (List.length rules)
      (String.length input)
  | Stats { id } -> Fmt.pf ppf "stats#%d" id

let pp_response ppf = function
  | Health_ok { id; version } -> Fmt.pf ppf "health-ok#%d %s" id version
  | Compiled { id; code_size; binary_bytes; lint } ->
    Fmt.pf ppf "compiled#%d %d instrs, %d bytes, %d diagnostics" id code_size
      binary_bytes (List.length lint)
  | Matches { id; spans; stats } ->
    Fmt.pf ppf "matches#%d %d spans, %d attempts" id (List.length spans)
      stats.attempts
  | Ruleset_matches { id; hits; stats } ->
    Fmt.pf ppf "ruleset-matches#%d %d hits, %d attempts" id (List.length hits)
      stats.attempts
  | Stats_reply { id; entries } ->
    Fmt.pf ppf "stats#%d %d entries" id (List.length entries)
  | Error { id; code; message } ->
    Fmt.pf ppf "error#%d [%s] %s" id (error_code_name code) message

(* --- Encoding ----------------------------------------------------------- *)

let default_max_frame = 64 * 1024 * 1024

let add_u8 b v = Buffer.add_uint8 b (v land 0xff)

let add_u32 b v = Buffer.add_int32_le b (Int32.of_int (v land 0xffffffff))

let add_u64 b v = Buffer.add_int64_le b (Int64.of_int v)

let add_str b s =
  add_u32 b (String.length s);
  Buffer.add_string b s

let add_bool b v = add_u8 b (if v then 1 else 0)

let add_stats b (s : scan_stats) =
  add_u64 b s.attempts;
  add_u64 b s.offsets_scanned;
  add_u64 b s.offsets_pruned;
  add_u64 b s.cycles

let frame payload_writer =
  let b = Buffer.create 256 in
  payload_writer b;
  let payload = Buffer.contents b in
  let f = Buffer.create (String.length payload + 4) in
  add_u32 f (String.length payload);
  Buffer.add_string f payload;
  Buffer.contents f

let encode_request req =
  frame (fun b ->
      match req with
      | Health { id } ->
        add_u8 b 0x01;
        add_u32 b id
      | Compile { id; pattern; allow_risky } ->
        add_u8 b 0x02;
        add_u32 b id;
        add_str b pattern;
        add_bool b allow_risky
      | Scan { id; pattern; input; deadline_ms; allow_risky } ->
        add_u8 b 0x03;
        add_u32 b id;
        add_str b pattern;
        add_str b input;
        add_u32 b deadline_ms;
        add_bool b allow_risky
      | Ruleset_scan { id; rules; input; deadline_ms; allow_risky } ->
        add_u8 b 0x04;
        add_u32 b id;
        add_u32 b (List.length rules);
        List.iter
          (fun (tag, pattern) ->
            add_str b tag;
            add_str b pattern)
          rules;
        add_str b input;
        add_u32 b deadline_ms;
        add_bool b allow_risky
      | Stats { id } ->
        add_u8 b 0x05;
        add_u32 b id)

let encode_response resp =
  frame (fun b ->
      match resp with
      | Health_ok { id; version } ->
        add_u8 b 0x81;
        add_u32 b id;
        add_str b version
      | Compiled { id; code_size; binary_bytes; lint } ->
        add_u8 b 0x82;
        add_u32 b id;
        add_u32 b code_size;
        add_u32 b binary_bytes;
        add_u32 b (List.length lint);
        List.iter
          (fun d ->
            add_u8 b (match d.severity with `Info -> 0 | `Warning -> 1);
            add_str b d.kind;
            add_u32 b d.left;
            add_u32 b d.right;
            add_str b d.message)
          lint
      | Matches { id; spans; stats } ->
        add_u8 b 0x83;
        add_u32 b id;
        add_u32 b (List.length spans);
        List.iter
          (fun (start, stop) ->
            add_u32 b start;
            add_u32 b stop)
          spans;
        add_stats b stats
      | Ruleset_matches { id; hits; stats } ->
        add_u8 b 0x84;
        add_u32 b id;
        add_u32 b (List.length hits);
        List.iter
          (fun (rule, tag, start, stop) ->
            add_u32 b rule;
            add_str b tag;
            add_u32 b start;
            add_u32 b stop)
          hits;
        add_stats b stats
      | Stats_reply { id; entries } ->
        add_u8 b 0x85;
        add_u32 b id;
        add_u32 b (List.length entries);
        List.iter
          (fun (name, v) ->
            add_str b name;
            Buffer.add_int64_le b (Int64.bits_of_float v))
          entries
      | Error { id; code; message } ->
        add_u8 b 0xff;
        add_u32 b id;
        add_u8 b (error_code_byte code);
        add_str b message)

(* --- Payload parsing ----------------------------------------------------

   A cursor over one extracted payload. Every primitive checks bounds
   and raises [Malformed] — caught once, at the frame boundary, and
   turned into sticky corruption. *)

exception Malformed of string

type cursor = { s : string; mutable pos : int }

let malformed fmt = Printf.ksprintf (fun m -> raise (Malformed m)) fmt

let remaining c = String.length c.s - c.pos

let u8 c =
  if remaining c < 1 then malformed "truncated payload (u8)";
  let v = Char.code c.s.[c.pos] in
  c.pos <- c.pos + 1;
  v

let u32 c =
  if remaining c < 4 then malformed "truncated payload (u32)";
  let v = String.get_int32_le c.s c.pos in
  c.pos <- c.pos + 4;
  Int32.to_int v land 0xffffffff

let u64 c =
  if remaining c < 8 then malformed "truncated payload (u64)";
  let v = String.get_int64_le c.s c.pos in
  c.pos <- c.pos + 8;
  if Int64.compare v 0L < 0 || Int64.compare v (Int64.of_int max_int) > 0 then
    malformed "u64 counter out of range";
  Int64.to_int v

let str c =
  let n = u32 c in
  if n > remaining c then malformed "string length %d exceeds payload" n;
  let s = String.sub c.s c.pos n in
  c.pos <- c.pos + n;
  s

let bool c =
  match u8 c with
  | 0 -> false
  | 1 -> true
  | v -> malformed "bad boolean byte %d" v

(* Element counts are attacker-controlled; cap them by the cheapest
   possible per-element footprint so a flipped count bit fails fast
   instead of allocating a huge list. *)
let counted c ~min_bytes parse =
  let n = u32 c in
  if min_bytes > 0 && n > remaining c / min_bytes then
    malformed "element count %d exceeds payload" n;
  (* explicit left-to-right loop: the parse steps are stateful cursor
     reads, so element order must be the wire order *)
  let rec go acc i = if i = 0 then List.rev acc else go (parse c :: acc) (i - 1) in
  go [] n

let stats c =
  let attempts = u64 c in
  let offsets_scanned = u64 c in
  let offsets_pruned = u64 c in
  let cycles = u64 c in
  { attempts; offsets_scanned; offsets_pruned; cycles }

let finish c v =
  if remaining c > 0 then malformed "%d trailing bytes after message" (remaining c);
  v

let parse_request payload =
  let c = { s = payload; pos = 0 } in
  let tag = u8 c in
  let id = u32 c in
  finish c
    (match tag with
    | 0x01 -> Health { id }
    | 0x02 ->
      let pattern = str c in
      let allow_risky = bool c in
      Compile { id; pattern; allow_risky }
    | 0x03 ->
      let pattern = str c in
      let input = str c in
      let deadline_ms = u32 c in
      let allow_risky = bool c in
      Scan { id; pattern; input; deadline_ms; allow_risky }
    | 0x04 ->
      let rules =
        counted c ~min_bytes:8 (fun c ->
            let tag = str c in
            let pattern = str c in
            (tag, pattern))
      in
      let input = str c in
      let deadline_ms = u32 c in
      let allow_risky = bool c in
      Ruleset_scan { id; rules; input; deadline_ms; allow_risky }
    | 0x05 -> Stats { id }
    | t -> malformed "unknown request tag 0x%02x" t)

let parse_response payload =
  let c = { s = payload; pos = 0 } in
  let tag = u8 c in
  let id = u32 c in
  finish c
    (match tag with
    | 0x81 ->
      let version = str c in
      Health_ok { id; version }
    | 0x82 ->
      let code_size = u32 c in
      let binary_bytes = u32 c in
      let lint =
        counted c ~min_bytes:17 (fun c ->
            let severity =
              match u8 c with
              | 0 -> `Info
              | 1 -> `Warning
              | v -> malformed "bad severity byte %d" v
            in
            let kind = str c in
            let left = u32 c in
            let right = u32 c in
            let message = str c in
            { severity; kind; left; right; message })
      in
      Compiled { id; code_size; binary_bytes; lint }
    | 0x83 ->
      let spans =
        counted c ~min_bytes:8 (fun c ->
            let start = u32 c in
            let stop = u32 c in
            (start, stop))
      in
      Matches { id; spans; stats = stats c }
    | 0x84 ->
      let hits =
        counted c ~min_bytes:16 (fun c ->
            let rule = u32 c in
            let tag = str c in
            let start = u32 c in
            let stop = u32 c in
            (rule, tag, start, stop))
      in
      Ruleset_matches { id; hits; stats = stats c }
    | 0x85 ->
      let entries =
        counted c ~min_bytes:12 (fun c ->
            let name = str c in
            if remaining c < 8 then malformed "truncated payload (f64)";
            let v = Int64.float_of_bits (String.get_int64_le c.s c.pos) in
            c.pos <- c.pos + 8;
            (name, v))
      in
      Stats_reply { id; entries }
    | 0xff ->
      let code =
        match error_code_of_byte (u8 c) with
        | Some code -> code
        | None -> malformed "unknown error code"
      in
      let message = str c in
      Error { id; code; message }
    | t -> malformed "unknown response tag 0x%02x" t)

(* --- Incremental decoder ------------------------------------------------ *)

type decoder = {
  mutable buf : Bytes.t;
  mutable start : int;  (* first unconsumed byte *)
  mutable len : int;  (* buffered bytes from [start] *)
  max_frame : int;
  mutable corrupt : string option;
}

type 'a event = Frame of 'a | Await | Corrupt of string

let decoder ?(max_frame = default_max_frame) () =
  { buf = Bytes.create 4096; start = 0; len = 0; max_frame; corrupt = None }

let buffered d = d.len

let feed d s =
  let n = String.length s in
  if n > 0 && d.corrupt = None then begin
    (if d.start + d.len + n > Bytes.length d.buf then begin
       (* compact, then grow if compaction alone is not enough *)
       if d.start > 0 then begin
         Bytes.blit d.buf d.start d.buf 0 d.len;
         d.start <- 0
       end;
       if d.len + n > Bytes.length d.buf then begin
         let cap = max (d.len + n) (2 * Bytes.length d.buf) in
         let bigger = Bytes.create cap in
         Bytes.blit d.buf 0 bigger 0 d.len;
         d.buf <- bigger
       end
     end);
    Bytes.blit_string s 0 d.buf (d.start + d.len) n;
    d.len <- d.len + n
  end

let next parse d =
  match d.corrupt with
  | Some m -> Corrupt m
  | None ->
    if d.len < 4 then Await
    else begin
      let n =
        Int32.to_int (Bytes.get_int32_le d.buf d.start) land 0xffffffff
      in
      if n < 1 || n > d.max_frame then begin
        let m = Printf.sprintf "bad frame length %d" n in
        d.corrupt <- Some m;
        Corrupt m
      end
      else if d.len < 4 + n then Await
      else begin
        let payload = Bytes.sub_string d.buf (d.start + 4) n in
        d.start <- d.start + 4 + n;
        d.len <- d.len - 4 - n;
        if d.len = 0 then d.start <- 0;
        match parse payload with
        | msg -> Frame msg
        | exception Malformed m ->
          d.corrupt <- Some m;
          Corrupt m
        | exception e ->
          (* defensive totality: no parser bug may crash a reader thread *)
          let m = "decoder exception: " ^ Printexc.to_string e in
          d.corrupt <- Some m;
          Corrupt m
      end
    end

let next_request d = next parse_request d
let next_response d = next parse_response d
