(* Request broker. One entry point, [handle]; everything else is the
   plumbing that makes a request observable (metrics) and refusable
   (lint gate, input cap, deadline). Isolation from the socket layer is
   deliberate: the loopback integration tests drive a full server, but
   the behavioural matrix (error codes, gate overrides, stat identities)
   is cheapest to pin down by calling [handle] directly. *)

module Compile = Alveare_compiler.Compile
module Ruleset = Alveare_compiler.Ruleset
module Core = Alveare_arch.Core
module Lint = Alveare_analysis.Lint
module Ambiguity = Alveare_analysis.Ambiguity
module Pool = Alveare_exec.Pool
module Cache = Alveare_exec.Cache

let version = "alveare-server/1"

(* Capability advertisement: the wire protocol is unchanged by the
   extended dialect (patterns are strings either way), so clients
   discover it from the Health version string. *)
let advertised_version ~extended =
  if extended then version ^ "+extended" else version

type config = {
  cache : Compile.cache;
  scan_workers : int;
  cores : int;
  lint_gate : bool;
  max_polynomial_degree : int option;
  max_input : int;
  dfa : bool;
  extended : bool;
  onepass : bool;
}

let default_config =
  { cache = Compile.default_cache;
    scan_workers = 1;
    cores = 1;
    lint_gate = true;
    max_polynomial_degree = None;
    max_input = 16 * 1024 * 1024;
    dfa = true;
    extended = false;
    onepass = true }

type t = {
  config : config;
  metrics : Metrics.t;
}

let create ?(config = default_config) metrics =
  Metrics.register_gauge metrics "exec/pool-queue-depth" (fun () ->
      Float.of_int (Pool.queue_depth ()));
  let cache_stat f =
    fun () -> Float.of_int (f (Compile.cache_stats config.cache))
  in
  Metrics.register_gauge metrics "cache/size"
    (cache_stat (fun s -> s.Cache.size));
  Metrics.register_gauge metrics "cache/hits"
    (cache_stat (fun s -> s.Cache.hits));
  Metrics.register_gauge metrics "cache/misses"
    (cache_stat (fun s -> s.Cache.misses));
  Metrics.register_gauge metrics "cache/evictions"
    (cache_stat (fun s -> s.Cache.evictions));
  Metrics.register_gauge metrics "cache/hit-rate" (fun () ->
      let s = Compile.cache_stats config.cache in
      let lookups = s.Cache.hits + s.Cache.misses in
      if lookups = 0 then 0.0
      else Float.of_int s.Cache.hits /. Float.of_int lookups);
  (* Lazy-DFA overlay cache counters, aggregated over every live
     pattern family in the process. *)
  let dfa_stat f =
    fun () -> Float.of_int (f (Alveare_arch.Dfa_overlay.global_stats ()))
  in
  let module D = Alveare_arch.Dfa_overlay in
  Metrics.register_gauge metrics "dfa/states-built"
    (dfa_stat (fun s -> s.D.states_built));
  Metrics.register_gauge metrics "dfa/transitions-built"
    (dfa_stat (fun s -> s.D.transitions_built));
  Metrics.register_gauge metrics "dfa/hits" (dfa_stat (fun s -> s.D.hits));
  Metrics.register_gauge metrics "dfa/misses" (dfa_stat (fun s -> s.D.misses));
  Metrics.register_gauge metrics "dfa/flushes"
    (dfa_stat (fun s -> s.D.flushes));
  Metrics.register_gauge metrics "dfa/bails" (dfa_stat (fun s -> s.D.bails));
  Metrics.register_gauge metrics "dfa/attempts"
    (dfa_stat (fun s -> s.D.dfa_attempts));
  (* Fused one-pass ruleset scan counters, process-wide over every
     combined sweep. *)
  let onepass_stat f =
    fun () -> Float.of_int (f (Alveare_compiler.Combined.counters ()))
  in
  let module C = Alveare_compiler.Combined in
  Metrics.register_gauge metrics "ruleset/onepass-scans"
    (onepass_stat (fun s -> s.C.onepass_scans));
  Metrics.register_gauge metrics "ruleset/shared-pass-bytes"
    (onepass_stat (fun s -> s.C.shared_pass_bytes));
  Metrics.register_gauge metrics "ruleset/dispatch-candidates"
    (onepass_stat (fun s -> s.C.dispatch_candidates));
  Metrics.register_gauge metrics "ruleset/ac-candidates"
    (onepass_stat (fun s -> s.C.ac_candidates));
  Metrics.register_gauge metrics "ruleset/product-rules"
    (onepass_stat (fun s -> s.C.product_rules));
  Metrics.register_gauge metrics "ruleset/product-threads"
    (onepass_stat (fun s -> s.C.product_threads));
  Metrics.register_gauge metrics "ruleset/product-states"
    (onepass_stat (fun s -> s.C.product_states));
  { config; metrics }

let config t = t.config
let metrics t = t.metrics

(* --- Conversions -------------------------------------------------------- *)

let lint_diag (d : Lint.diagnostic) : Protocol.lint_diag =
  { severity = (match d.Lint.severity with Lint.Info -> `Info | Lint.Warning -> `Warning);
    kind = Lint.kind_name d.Lint.kind;
    left = d.Lint.left;
    right = d.Lint.right;
    message = d.Lint.message }

let scan_stats (s : Core.stats) : Protocol.scan_stats =
  { attempts = s.Core.attempts;
    offsets_scanned = s.Core.offsets_scanned;
    offsets_pruned = s.Core.offsets_pruned;
    cycles = s.Core.cycles }

(* Admission verdict for one analysed pattern: [Some (metric, why)]
   when the precise analysis says the worst case is non-linear and the
   configured policy refuses it. Exponential patterns are refused by
   default; polynomial ones only when [max_polynomial_degree] is set
   and the proven degree reaches it. Heuristic (Info) lint diagnostics
   never gate admission on their own. *)
let refusal_of_analysis t (a : Ambiguity.t) : (string * string) option =
  let witness_text () =
    match a.Ambiguity.witness with
    | None -> ""
    | Some w ->
      Printf.sprintf " — validated attack witness pumps %S at bytes %d..%d"
        w.Ambiguity.pump w.Ambiguity.pump_left w.Ambiguity.pump_right
  in
  match a.Ambiguity.verdict with
  | Ambiguity.Exponential ->
    Some
      ( "gate/rejected-exponential",
        Printf.sprintf "proven exponential backtracking%s" (witness_text ()) )
  | Ambiguity.Polynomial d ->
    (match t.config.max_polynomial_degree with
     | Some k when d >= k ->
       Some
         ( "gate/rejected-polynomial",
           Printf.sprintf
             "proven polynomial backtracking of degree %d (server limit %d)%s"
             d k (witness_text ()) )
     | _ -> None)
  | Ambiguity.Linear -> None

let refusal t (c : Compile.compiled) = refusal_of_analysis t c.Compile.analysis

let rejection_message pattern why =
  Printf.sprintf
    "pattern %S refused by the admission gate: %s; resend with allow_risky \
     to override"
    pattern why

(* --- Request handlers --------------------------------------------------- *)

let err t id code message =
  Metrics.inc t.metrics ("errors/" ^ Protocol.error_code_name code);
  Protocol.Error { id; code; message }

let gate t ~id ~allow_risky (c : Compile.compiled) k =
  match refusal t c with
  | None -> k c
  | Some _ when (not t.config.lint_gate) || allow_risky -> k c
  | Some (metric, why) ->
    Metrics.inc t.metrics metric;
    err t id Protocol.Lint_rejected
      (rejection_message c.Compile.pattern why)

let compile_pattern t ~id pattern k =
  match
    Compile.cached ~cache:t.config.cache ~extended:t.config.extended pattern
  with
  | Error e -> err t id Protocol.Parse_error (Compile.error_message e)
  | Ok c -> k c

let check_input t ~id input k =
  if String.length input > t.config.max_input then
    err t id Protocol.Too_large
      (Printf.sprintf "input is %d bytes; this server accepts at most %d"
         (String.length input) t.config.max_input)
  else k ()

let handle_compile t ~id ~pattern ~allow_risky =
  compile_pattern t ~id pattern (fun c ->
      gate t ~id ~allow_risky c (fun c ->
          let binary_bytes = (Compile.stats c).Compile.binary_bytes in
          Protocol.Compiled
            { id;
              code_size = Compile.code_size c;
              binary_bytes;
              lint = List.map lint_diag c.Compile.lint }))

let observe_scan t ~histogram ~t0 (s : Protocol.scan_stats) =
  Metrics.observe t.metrics histogram (Unix.gettimeofday () -. t0);
  Metrics.inc t.metrics ~by:s.Protocol.attempts "scan/attempts";
  Metrics.inc t.metrics ~by:s.Protocol.offsets_pruned "scan/offsets-pruned";
  Metrics.inc t.metrics ~by:s.Protocol.offsets_scanned "scan/offsets-scanned"

let handle_scan t ~id ~pattern ~input ~allow_risky =
  check_input t ~id input (fun () ->
      compile_pattern t ~id pattern (fun c ->
          gate t ~id ~allow_risky c (fun c ->
              let t0 = Unix.gettimeofday () in
              let stats = Core.fresh_stats () in
              let fam = if t.config.dfa then c.Compile.dfa else None in
              let spans =
                match c.Compile.backend with
                | Compile.Derivative eng ->
                  (* extended pattern served by the derivative engine:
                     host execution, so no DSA cycle/attempt counters.
                     The admission gate admitted it as a matter of
                     policy — the engine is worst-case linear per
                     start position, so there is no backtracking blowup
                     for the gate to refuse. *)
                  Alveare_derivative.Engine.find_all eng input
                | Compile.Isa | Compile.Isa_lowered ->
                if t.config.cores = 1 then
                  Core.find_all ~stats ~prefilter:c.Compile.prefilter
                    ~plan:c.Compile.plan ?dfa:fam c.Compile.program input
                else
                  (* multicore scale-out keeps its own per-core stats;
                     aggregate by summing into the fresh record *)
                  let r =
                    Alveare_multicore.Multicore.run
                      ~config:
                        (Alveare_multicore.Multicore.config
                           ~cores:t.config.cores ())
                      ~prefilter:c.Compile.prefilter ~plan:c.Compile.plan
                      ?dfa:fam c.Compile.program input
                  in
                  Array.iter
                    (fun (cs : Alveare_multicore.Multicore.core_result) ->
                      let s = cs.Alveare_multicore.Multicore.stats in
                      stats.Core.attempts <-
                        stats.Core.attempts + s.Core.attempts;
                      stats.Core.offsets_scanned <-
                        stats.Core.offsets_scanned + s.Core.offsets_scanned;
                      stats.Core.offsets_pruned <-
                        stats.Core.offsets_pruned + s.Core.offsets_pruned;
                      stats.Core.cycles <- stats.Core.cycles + s.Core.cycles)
                    r.Alveare_multicore.Multicore.per_core;
                  r.Alveare_multicore.Multicore.matches
              in
              let s = scan_stats stats in
              observe_scan t ~histogram:"latency/scan" ~t0 s;
              Protocol.Matches
                { id;
                  spans =
                    List.map
                      (fun (sp : Alveare_engine.Semantics.span) ->
                        (sp.Alveare_engine.Semantics.start,
                         sp.Alveare_engine.Semantics.stop))
                      spans;
                  stats = s })))

let handle_ruleset_scan t ~id ~rules ~input ~allow_risky =
  check_input t ~id input (fun () ->
      match
        Ruleset.compile ~cache:t.config.cache ~workers:t.config.scan_workers
          ~extended:t.config.extended rules
      with
      | Error errs ->
        err t id Protocol.Parse_error
          (String.concat "; "
             (List.map
                (fun (e : Ruleset.compile_error) ->
                  Printf.sprintf "rule %S: %s" e.Ruleset.failed_rule.Ruleset.tag
                    e.Ruleset.reason)
                errs))
      | Ok rs ->
        let flagged =
          List.filter_map
            (fun ((r : Ruleset.rule), a) ->
              Option.map (fun ref -> (r, ref)) (refusal_of_analysis t a))
            (Ruleset.analysis_report rs)
        in
        if flagged <> [] && t.config.lint_gate && not allow_risky then begin
          List.iter (fun (_, (metric, _)) -> Metrics.inc t.metrics metric)
            flagged;
          err t id Protocol.Lint_rejected
            (String.concat "; "
               (List.map
                  (fun ((r : Ruleset.rule), (_, why)) ->
                    rejection_message
                      (r.Ruleset.tag ^ ": " ^ r.Ruleset.pattern) why)
                  flagged))
        end
        else begin
          let t0 = Unix.gettimeofday () in
          let report =
            Ruleset.scan ~cores:t.config.cores ~workers:t.config.scan_workers
              ~dfa:t.config.dfa ~onepass:t.config.onepass rs input
          in
          let s : Protocol.scan_stats =
            { attempts = report.Ruleset.total_attempts;
              offsets_scanned = report.Ruleset.total_offsets_scanned;
              offsets_pruned = report.Ruleset.total_offsets_pruned;
              cycles = report.Ruleset.total_wall_cycles }
          in
          observe_scan t ~histogram:"latency/ruleset-scan" ~t0 s;
          Protocol.Ruleset_matches
            { id;
              hits =
                List.map
                  (fun (h : Ruleset.hit) ->
                    ( h.Ruleset.hit_rule.Ruleset.id,
                      h.Ruleset.hit_rule.Ruleset.tag,
                      h.Ruleset.span.Alveare_engine.Semantics.start,
                      h.Ruleset.span.Alveare_engine.Semantics.stop ))
                  report.Ruleset.hits;
              stats = s }
        end)

let request_kind = function
  | Protocol.Health _ -> "health"
  | Protocol.Compile _ -> "compile"
  | Protocol.Scan _ -> "scan"
  | Protocol.Ruleset_scan _ -> "ruleset-scan"
  | Protocol.Stats _ -> "stats"

let handle t ?deadline req =
  let id = Protocol.request_id req in
  Metrics.inc t.metrics ("requests/" ^ request_kind req);
  let expired =
    match deadline with
    | Some d -> Unix.gettimeofday () > d
    | None -> false
  in
  if expired then
    err t id Protocol.Deadline_exceeded
      "deadline passed while the request waited for a worker"
  else
    try
      match req with
      | Protocol.Health { id } ->
        Protocol.Health_ok
          { id; version = advertised_version ~extended:t.config.extended }
      | Protocol.Compile { id; pattern; allow_risky } ->
        handle_compile t ~id ~pattern ~allow_risky
      | Protocol.Scan { id; pattern; input; allow_risky; deadline_ms = _ } ->
        handle_scan t ~id ~pattern ~input ~allow_risky
      | Protocol.Ruleset_scan { id; rules; input; allow_risky; deadline_ms = _ }
        ->
        handle_ruleset_scan t ~id ~rules ~input ~allow_risky
      | Protocol.Stats { id } ->
        Protocol.Stats_reply { id; entries = Metrics.snapshot t.metrics }
    with e ->
      err t id Protocol.Internal
        ("unexpected exception: " ^ Printexc.to_string e)
