(* Metrics registry: one mutex over a name-keyed table. The serving hot
   path touches it once or twice per request (a counter bump, one
   histogram observation), so a single uncontended lock is far below the
   cost of the scans it measures; what matters is that the registry can
   never deadlock against subsystem locks, which is why callback gauges
   are evaluated outside the registry lock at snapshot time. *)

type histogram = {
  counts : int array;  (* one per bucket, last = overflow *)
  mutable count : int;
  mutable sum : float;
  mutable max_obs : float;
}

type metric =
  | Counter of int ref
  | Gauge of float ref
  | Callback of (unit -> float) ref
  | Histogram of histogram

type t = {
  mutex : Mutex.t;
  table : (string, metric) Hashtbl.t;
}

let create () = { mutex = Mutex.create (); table = Hashtbl.create 64 }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Callback _ -> "callback gauge"
  | Histogram _ -> "histogram"

(* Find-or-create under the lock; a name can only ever hold one kind. *)
let intern t name make check =
  locked t (fun () ->
      match Hashtbl.find_opt t.table name with
      | Some m ->
        (match check m with
        | Some v -> v
        | None ->
          invalid_arg
            (Printf.sprintf "Metrics: %S is a %s, not the requested kind" name
               (kind_name m)))
      | None ->
        let m, v = make () in
        Hashtbl.add t.table name m;
        v)

let inc t ?(by = 1) name =
  if by < 0 then invalid_arg "Metrics.inc: negative increment";
  let r =
    intern t name
      (fun () ->
        let r = ref 0 in
        (Counter r, r))
      (function Counter r -> Some r | _ -> None)
  in
  locked t (fun () -> r := !r + by)

let set_gauge t name v =
  let r =
    intern t name
      (fun () ->
        let r = ref 0.0 in
        (Gauge r, r))
      (function Gauge r -> Some r | _ -> None)
  in
  locked t (fun () -> r := v)

let register_gauge t name f =
  let r =
    intern t name
      (fun () ->
        let r = ref f in
        (Callback r, r))
      (function Callback r -> Some r | _ -> None)
  in
  locked t (fun () -> r := f)

(* Logarithmic buckets: bound k = 1e-6 * 2^k seconds, k = 0..25, so the
   range 1 µs .. ~33.5 s is covered with 2x resolution; the final slot
   absorbs anything slower. *)
let n_buckets = 26

let bucket_bound k = 1e-6 *. Float.of_int (1 lsl k)

let bucket_of v =
  let rec go k = if k >= n_buckets || v <= bucket_bound k then k else go (k + 1) in
  go 0

let observe t name v =
  let h =
    intern t name
      (fun () ->
        let h =
          { counts = Array.make (n_buckets + 1) 0;
            count = 0;
            sum = 0.0;
            max_obs = 0.0 }
        in
        (Histogram h, h))
      (function Histogram h -> Some h | _ -> None)
  in
  locked t (fun () ->
      h.counts.(bucket_of v) <- h.counts.(bucket_of v) + 1;
      h.count <- h.count + 1;
      h.sum <- h.sum +. v;
      if v > h.max_obs then h.max_obs <- v)

let counter_value t name =
  locked t (fun () ->
      match Hashtbl.find_opt t.table name with
      | Some (Counter r) -> !r
      | _ -> 0)

let quantile h q =
  if h.count = 0 then 0.0
  else begin
    let target = Float.to_int (Float.round (q *. Float.of_int h.count)) in
    let target = max 1 (min h.count target) in
    let rec go k acc =
      if k > n_buckets then h.max_obs
      else
        let acc = acc + h.counts.(k) in
        if acc >= target then
          if k >= n_buckets then h.max_obs else Float.min (bucket_bound k) h.max_obs
        else go (k + 1) acc
    in
    go 0 0
  end

let snapshot t =
  (* copy out the structure under the lock, evaluate callbacks outside *)
  let rows, callbacks =
    locked t (fun () ->
        Hashtbl.fold
          (fun name m (rows, cbs) ->
            match m with
            | Counter r -> ((name, Float.of_int !r) :: rows, cbs)
            | Gauge r -> ((name, !r) :: rows, cbs)
            | Callback r -> (rows, (name, !r) :: cbs)
            | Histogram h ->
              ( (name ^ "/count", Float.of_int h.count)
                :: (name ^ "/sum", h.sum)
                :: (name ^ "/p50", quantile h 0.50)
                :: (name ^ "/p90", quantile h 0.90)
                :: (name ^ "/p99", quantile h 0.99)
                :: (name ^ "/max", h.max_obs)
                :: rows,
                cbs ))
          t.table ([], []))
  in
  let rows =
    List.fold_left
      (fun rows (name, f) ->
        let v = try f () with _ -> Float.nan in
        (name, v) :: rows)
      rows callbacks
  in
  List.sort (fun (a, _) (b, _) -> String.compare a b) rows
