(** Blocking client for the matching daemon — used by
    [bin/alveare_client], the loopback integration tests and the serving
    benchmark. One connection per value; not thread-safe (give each
    thread its own connection, as the tests do).

    {!call} is the simple round trip. {!send}/{!recv} expose the
    pipelined form: the wire protocol is full-duplex and the server
    replies out of admission order under load (sheds are answered by the
    reader thread immediately, admitted work later), so pipelined
    callers must correlate responses by request id — exactly what the
    overload tests do to observe shedding. *)

type t

type addr = Server.addr = Unix_sock of string | Tcp of string * int

val connect : addr -> t
(** Raises [Unix.Unix_error] when nothing listens there. *)

val close : t -> unit

val send : t -> Protocol.request -> unit
(** Write one request frame; does not wait. *)

val recv : t -> (Protocol.response, string) result
(** Next response frame, in arrival order. [Error] = connection closed
    or undecodable response bytes. *)

val call : t -> Protocol.request -> (Protocol.response, string) result
(** [send] then [recv], checking that the response echoes the request id
    (decoder-level failures arrive on id 0 and are surfaced as the
    response they are). *)

(** {1 Convenience wrappers}

    Each allocates a fresh request id from a per-connection counter. *)

val health : t -> (Protocol.response, string) result

val compile :
  ?allow_risky:bool -> t -> string -> (Protocol.response, string) result

val scan :
  ?allow_risky:bool -> ?deadline_ms:int -> t -> pattern:string ->
  input:string -> (Protocol.response, string) result

val ruleset_scan :
  ?allow_risky:bool -> ?deadline_ms:int -> t ->
  rules:(string * string) list -> input:string ->
  (Protocol.response, string) result

val stats : t -> (Protocol.response, string) result

val fresh_id : t -> int
(** The id the next convenience wrapper would use; exposed so pipelined
    callers can mix wrappers with hand-built requests. *)
