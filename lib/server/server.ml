(* The daemon. Thread architecture:

     accept loop ──spawns──► reader (one per connection)
                                │  decode frames, admit or shed
                                ▼
                        bounded admission queue
                                │  pop (FIFO)
                        worker × N ──► Service.handle ──► write response

   Readers do no matching work: they decode, then either enqueue
   (queue below capacity) or answer [overloaded] on the spot — under
   saturation every client gets a fast, explicit rejection instead of a
   stalled connection. Responses are written under a per-connection
   mutex, so a reader shedding and a worker answering never interleave
   bytes on the wire.

   Shutdown never abandons admitted work: [stop] flips [stopping] (new
   requests shed with [shutting-down]), wakes everyone, waits on the
   [drained] condition until the queue is empty and no request is
   in flight, then closes the sockets and joins the threads. Blocking
   calls are woken without OS tricks: the accept loop selects with a
   short timeout, and readers rely on their read timeout — both recheck
   [stopping] when they come up for air. *)

type addr = Unix_sock of string | Tcp of string * int

type config = {
  addr : addr;
  queue_capacity : int;
  workers : int;
  idle_timeout : float;
  max_frame : int;
  service : Service.config;
}

let default_config =
  { addr = Unix_sock "/tmp/alveared.sock";
    queue_capacity = 64;
    workers = 4;
    idle_timeout = 30.0;
    max_frame = Protocol.default_max_frame;
    service = Service.default_config }

type conn = {
  fd : Unix.file_descr;
  write_mutex : Mutex.t;
  mutable alive : bool;
}

type task = {
  conn : conn;
  req : Protocol.request;
  deadline : float option;
}

type t = {
  cfg : config;
  service : Service.t;
  metrics : Metrics.t;
  listener : Unix.file_descr;
  bound_port : int option;
  queue : task Queue.t;
  mutex : Mutex.t;
  wakeup : Condition.t;  (* queue state changed / stopping / resume *)
  drained : Condition.t;  (* queue empty and nothing in flight *)
  mutable in_flight : int;
  mutable stopping : bool;
  mutable paused : bool;
  mutable conns : conn list;
  mutable readers : Thread.t list;
  mutable workers : Thread.t list;
  mutable accepter : Thread.t option;
  stop_mutex : Mutex.t;  (* serialises concurrent [stop] calls *)
  mutable stopped : bool;
}

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* --- Writing ------------------------------------------------------------ *)

let write_all fd s =
  let len = String.length s in
  let b = Bytes.unsafe_of_string s in
  let rec go off =
    if off < len then begin
      let n = Unix.write fd b off (len - off) in
      go (off + n)
    end
  in
  go 0

let send t conn resp =
  Mutex.lock conn.write_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock conn.write_mutex)
    (fun () ->
      if conn.alive then
        try write_all conn.fd (Protocol.encode_response resp)
        with Unix.Unix_error _ ->
          (* peer went away; its pending responses are undeliverable *)
          conn.alive <- false;
          Metrics.inc t.metrics "connections/write-failed")

(* --- Workers ------------------------------------------------------------ *)

let signal_if_drained t =
  if Queue.is_empty t.queue && t.in_flight = 0 then Condition.broadcast t.drained

let worker_loop t () =
  let next () =
    locked t (fun () ->
        let rec wait () =
          (* a pause blocks the queue, except during shutdown drain *)
          if (not (Queue.is_empty t.queue)) && ((not t.paused) || t.stopping)
          then begin
            let task = Queue.pop t.queue in
            t.in_flight <- t.in_flight + 1;
            Some task
          end
          else if t.stopping && Queue.is_empty t.queue then None
          else begin
            Condition.wait t.wakeup t.mutex;
            wait ()
          end
        in
        wait ())
  and run task =
    let resp = Service.handle t.service ?deadline:task.deadline task.req in
    send t task.conn resp;
    locked t (fun () ->
        t.in_flight <- t.in_flight - 1;
        signal_if_drained t)
  in
  let rec loop () =
    match next () with
    | None -> ()
    | Some task ->
      run task;
      loop ()
  in
  loop ()

(* --- Admission ---------------------------------------------------------- *)

let deadline_of req =
  let ms =
    match req with
    | Protocol.Scan { deadline_ms; _ } | Protocol.Ruleset_scan { deadline_ms; _ }
      ->
      deadline_ms
    | _ -> 0
  in
  if ms <= 0 then None
  else Some (Unix.gettimeofday () +. (Float.of_int ms /. 1000.0))

let admit t conn req =
  let id = Protocol.request_id req in
  let verdict =
    locked t (fun () ->
        if t.stopping then `Refuse (Protocol.Shutting_down, "server is shutting down")
        else if Queue.length t.queue >= t.cfg.queue_capacity then
          `Refuse
            ( Protocol.Overloaded,
              Printf.sprintf
                "admission queue full (%d waiting); request shed, retry later"
                (Queue.length t.queue) )
        else begin
          Queue.push { conn; req; deadline = deadline_of req } t.queue;
          Condition.signal t.wakeup;
          `Admitted
        end)
  in
  match verdict with
  | `Admitted -> Metrics.inc t.metrics "admission/admitted"
  | `Refuse (code, message) ->
    Metrics.inc t.metrics "admission/shed";
    Metrics.inc t.metrics ("errors/" ^ Protocol.error_code_name code);
    send t conn (Protocol.Error { id; code; message })

(* --- Readers ------------------------------------------------------------ *)

let close_conn t conn =
  let was_alive =
    locked t (fun () ->
        let was = conn.alive in
        conn.alive <- false;
        t.conns <- List.filter (fun c -> c != conn) t.conns;
        was)
  in
  if was_alive then begin
    (* the write mutex fences any in-progress response: [send] checks
       [alive] under it, so once we hold it nobody writes to the fd again *)
    Mutex.lock conn.write_mutex;
    (try Unix.close conn.fd with Unix.Unix_error _ -> ());
    Mutex.unlock conn.write_mutex;
    Metrics.inc t.metrics "connections/closed"
  end

let reader_loop t conn () =
  let dec = Protocol.decoder ~max_frame:t.cfg.max_frame () in
  let buf = Bytes.create 65536 in
  let rec drain () =
    match Protocol.next_request dec with
    | Protocol.Frame req ->
      Metrics.inc t.metrics "frames/received";
      admit t conn req;
      drain ()
    | Protocol.Await -> `Continue
    | Protocol.Corrupt m ->
      (* framing is lost: report once on id 0, then hang up *)
      Metrics.inc t.metrics "frames/corrupt";
      send t conn
        (Protocol.Error { id = 0; code = Protocol.Bad_frame; message = m });
      `Close
  in
  let rec loop () =
    if t.stopping || not conn.alive then ()
    else
      match Unix.read conn.fd buf 0 (Bytes.length buf) with
      | 0 -> ()  (* peer closed *)
      | n ->
        Protocol.feed dec (Bytes.sub_string buf 0 n);
        (match drain () with `Continue -> loop () | `Close -> ())
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) ->
        (* read timeout: either idle-close or a shutdown recheck *)
        if t.stopping then () else Metrics.inc t.metrics "connections/idle-closed"
      | exception Unix.Unix_error _ -> ()
  in
  loop ();
  close_conn t conn;
  (* drop the finished thread handle so a long-lived daemon's reader
     list stays proportional to its open connections *)
  let self = Thread.id (Thread.self ()) in
  locked t (fun () ->
      t.readers <- List.filter (fun th -> Thread.id th <> self) t.readers)

(* --- Accept loop -------------------------------------------------------- *)

let accept_loop t () =
  let rec loop () =
    if not t.stopping then begin
      (match Unix.select [ t.listener ] [] [] 0.2 with
      | [], _, _ -> ()
      | _ :: _, _, _ -> (
        match Unix.accept t.listener with
        | fd, _ ->
          Unix.setsockopt_float fd Unix.SO_RCVTIMEO t.cfg.idle_timeout;
          let conn = { fd; write_mutex = Mutex.create (); alive = true } in
          let accepted =
            locked t (fun () ->
                if t.stopping then false
                else begin
                  t.conns <- conn :: t.conns;
                  true
                end)
          in
          if accepted then begin
            Metrics.inc t.metrics "connections/accepted";
            let th = Thread.create (reader_loop t conn) () in
            locked t (fun () -> t.readers <- th :: t.readers)
          end
          else Unix.close fd
        | exception Unix.Unix_error _ -> ())
      | exception Unix.Unix_error _ -> ());
      loop ()
    end
  in
  loop ()

(* --- Lifecycle ---------------------------------------------------------- *)

let listen_on addr =
  match addr with
  | Unix_sock path ->
    (* a previous daemon's socket file would fail the bind; replace it *)
    (try Unix.unlink path with Unix.Unix_error _ -> ());
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try
       Unix.bind fd (Unix.ADDR_UNIX path);
       Unix.listen fd 64
     with e ->
       Unix.close fd;
       raise e);
    (fd, None)
  | Tcp (host, port) ->
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    (try
       Unix.setsockopt fd Unix.SO_REUSEADDR true;
       let inet =
         if host = "" then Unix.inet_addr_loopback
         else Unix.inet_addr_of_string host
       in
       Unix.bind fd (Unix.ADDR_INET (inet, port));
       Unix.listen fd 64
     with e ->
       Unix.close fd;
       raise e);
    let bound =
      match Unix.getsockname fd with
      | Unix.ADDR_INET (_, p) -> p
      | Unix.ADDR_UNIX _ -> assert false
    in
    (fd, Some bound)

let start ?metrics cfg =
  if cfg.queue_capacity < 1 then invalid_arg "Server.start: queue_capacity < 1";
  if cfg.workers < 1 then invalid_arg "Server.start: workers < 1";
  (match Sys.os_type with
  | "Unix" -> Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  | _ -> ());
  let metrics = match metrics with Some m -> m | None -> Metrics.create () in
  let service = Service.create ~config:cfg.service metrics in
  let listener, bound_port = listen_on cfg.addr in
  let t =
    { cfg;
      service;
      metrics;
      listener;
      bound_port;
      queue = Queue.create ();
      mutex = Mutex.create ();
      wakeup = Condition.create ();
      drained = Condition.create ();
      in_flight = 0;
      stopping = false;
      paused = false;
      conns = [];
      readers = [];
      workers = [];
      accepter = None;
      stop_mutex = Mutex.create ();
      stopped = false }
  in
  Metrics.register_gauge metrics "admission/queue-depth" (fun () ->
      Float.of_int (locked t (fun () -> Queue.length t.queue)));
  Metrics.register_gauge metrics "admission/in-flight" (fun () ->
      Float.of_int (locked t (fun () -> t.in_flight)));
  Metrics.register_gauge metrics "connections/open" (fun () ->
      Float.of_int (locked t (fun () -> List.length t.conns)));
  t.workers <-
    List.init cfg.workers (fun _ -> Thread.create (worker_loop t) ());
  t.accepter <- Some (Thread.create (accept_loop t) ());
  t

let port t = t.bound_port
let metrics t = t.metrics
let service t = t.service
let queue_depth t = locked t (fun () -> Queue.length t.queue)

let pause t = locked t (fun () -> t.paused <- true)

let resume t =
  locked t (fun () ->
      t.paused <- false;
      Condition.broadcast t.wakeup)

let stop t =
  Mutex.lock t.stop_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.stop_mutex)
    (fun () ->
      if not t.stopped then begin
        t.stopped <- true;
        (* 1. no new work: refuse admissions, drain the queue *)
        locked t (fun () ->
            t.stopping <- true;
            Condition.broadcast t.wakeup;
            while not (Queue.is_empty t.queue && t.in_flight = 0) do
              Condition.wait t.drained t.mutex
            done);
        (* 2. every admitted response is on the wire: tear down *)
        List.iter Thread.join t.workers;
        (match t.accepter with Some th -> Thread.join th | None -> ());
        (try Unix.close t.listener with Unix.Unix_error _ -> ());
        (match t.cfg.addr with
        | Unix_sock path ->
          (try Unix.unlink path with Unix.Unix_error _ -> ())
        | Tcp _ -> ());
        (* readers are blocked in [read] at worst until their timeout;
           shutting the sockets down wakes them immediately *)
        let conns = locked t (fun () -> t.conns) in
        List.iter
          (fun c ->
            try Unix.shutdown c.fd Unix.SHUTDOWN_ALL
            with Unix.Unix_error _ -> ())
          conns;
        let readers = locked t (fun () -> t.readers) in
        List.iter Thread.join readers;
        List.iter (fun c -> close_conn t c) (locked t (fun () -> t.conns))
      end)
