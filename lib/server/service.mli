(** Request broker: the pure-ish middle of the serving stack. Maps one
    decoded {!Protocol.request} to one {!Protocol.response}, routing
    compiles through the shared {!Alveare_compiler.Compile.cached} LRU,
    running the precise admission gate on submitted patterns (patterns
    with proven-exploitable backtracking are refused with
    [Lint_rejected] unless the client sets [allow_risky]), and
    dispatching ruleset scans over the {!Alveare_exec.Pool} host
    domains. No sockets, no threads of its own — the {!Server} accept
    loop calls {!handle} from its worker threads, and tests call it
    directly. *)

type config = {
  cache : Alveare_compiler.Compile.cache;
      (** compiled-pattern LRU shared by every request *)
  scan_workers : int;
      (** host domains for per-rule ruleset scan fan-out (1 = in-line) *)
  cores : int;  (** simulated DSA cores per scan *)
  lint_gate : bool;
      (** admission gate master switch: when on, refuse patterns the
          precise analysis proves [Exponential] (and [Polynomial]
          beyond [max_polynomial_degree], if set) unless the request
          opts in with [allow_risky]; heuristic lint diagnostics are
          advisory and never gate on their own. Rejections increment
          [gate/rejected-exponential] / [gate/rejected-polynomial]. *)
  max_polynomial_degree : int option;
      (** when [Some k], also refuse patterns with proven polynomial
          backtracking of degree [>= k] (attempt cost n^(k+1));
          [None] (default) admits every polynomial pattern *)
  max_input : int;  (** inputs longer than this are [Too_large] *)
  dfa : bool;
      (** execute backtracking-free fragments on the lazy-DFA overlay
          ({!Alveare_arch.Dfa_overlay}); responses — spans and every
          stat — are bit-identical with it off, only host throughput
          changes *)
  extended : bool;
      (** accept the extended pattern dialect (intersection [&],
          complement [(?~r)], lookarounds). Extended patterns the
          mid-end cannot rewrite for the ISA are served by the
          derivative engine; they pass the admission gate by policy —
          the derivative engine is worst-case linear per start
          position, so there is no backtracking blowup to refuse (their
          precise analysis reports
          [extended-operator-unanalyzed]/[Linear]). The wire protocol
          is unchanged; capability is advertised via the [Health]
          version suffix [+extended]. *)
  onepass : bool;
      (** run prefiltered single-core ruleset scans on the fused
          one-pass engine ({!Alveare_compiler.Combined}) — one shared
          sweep for the whole ruleset instead of one pass per rule.
          Responses are bit-identical with it off; only host scan
          throughput changes. *)
}

val default_config : config
(** Shared default cache, 1 worker, 1 core, gate on (exponential only,
    [max_polynomial_degree = None]), 16 MiB input cap, overlay on,
    extended dialect off, one-pass ruleset scans on. *)

type t

val create : ?config:config -> Metrics.t -> t
(** Registers the serving callback gauges on the given registry:
    [exec/pool-queue-depth] ({!Alveare_exec.Pool.queue_depth}), the
    compile-cache gauges ([cache/size], [cache/hit-rate], ...) and the
    lazy-DFA overlay cache gauges ([dfa/states-built],
    [dfa/transitions-built], [dfa/hits], [dfa/misses], [dfa/flushes],
    [dfa/bails], [dfa/attempts] — process-wide aggregates from
    {!Alveare_arch.Dfa_overlay.global_stats}), plus the fused one-pass
    ruleset scan gauges ([ruleset/onepass-scans],
    [ruleset/shared-pass-bytes], [ruleset/dispatch-candidates],
    [ruleset/ac-candidates], [ruleset/product-rules],
    [ruleset/product-threads], [ruleset/product-states] — from
    {!Alveare_compiler.Combined.counters}). *)

val config : t -> config
val metrics : t -> Metrics.t

val handle : t -> ?deadline:float -> Protocol.request -> Protocol.response
(** One request, synchronously. [deadline] is an absolute
    [Unix.gettimeofday] instant fixed at admission time; a request whose
    deadline has passed when work would start is answered
    [Deadline_exceeded] without scanning (scans themselves are not
    preempted — the deadline bounds queue wait, the admission queue
    bounds scan backlog). Never raises: unexpected exceptions become
    [Internal] error responses. Updates the metrics registry (request /
    error counters by type, scan latency histograms, attempt and
    pruning counters). *)

val version : string
(** Protocol/server version string reported by [Health]. *)

val advertised_version : extended:bool -> string
(** The [Health] version string for a given capability set: [version]
    with the [+extended] suffix when the extended dialect is on. *)
