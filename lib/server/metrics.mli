(** Lock-safe metrics registry for the serving layer: named counters,
    gauges and latency histograms behind one mutex, plus callback gauges
    sampled at snapshot time (queue depth, cache hit rate, pool
    backlog — values owned by other subsystems).

    All operations are safe from any thread; registration is lazy and
    idempotent by name. Using one name with two different metric kinds
    is a programming error and raises [Invalid_argument] — silently
    merging a counter into a histogram would corrupt both. *)

type t

val create : unit -> t

(** {1 Counters} *)

val inc : t -> ?by:int -> string -> unit
(** Monotonic counter; creates it at 0 on first use. [by] defaults to 1
    and must be non-negative. *)

(** {1 Gauges} *)

val set_gauge : t -> string -> float -> unit

val register_gauge : t -> string -> (unit -> float) -> unit
(** A callback gauge, evaluated at every {!snapshot} outside the
    registry lock (so the callback may itself consult locked state).
    Re-registering a name replaces the callback. A callback that raises
    reports [nan] rather than poisoning the snapshot. *)

(** {1 Histograms} *)

val observe : t -> string -> float -> unit
(** Record one observation (latencies in seconds). Buckets are
    logarithmic, 1 µs — 64 s; observations outside land in the edge
    buckets. *)

(** {1 Reading} *)

val counter_value : t -> string -> int
(** 0 when the counter was never incremented. *)

val snapshot : t -> (string * float) list
(** Every metric flattened to [(name, value)] rows, sorted by name:
    counters and gauges as themselves, each histogram [h] as [h/count],
    [h/sum], [h/p50], [h/p90], [h/p99] and [h/max] (quantiles are upper
    bucket bounds; 0 when empty). This is exactly the payload of the
    wire protocol's [Stats] response. *)
