(* Blocking client. Deliberately minimal: a socket, an incremental
   response decoder, and an id counter for the convenience wrappers. *)

type addr = Server.addr = Unix_sock of string | Tcp of string * int

type t = {
  fd : Unix.file_descr;
  dec : Protocol.decoder;
  buf : Bytes.t;
  mutable next_id : int;
  mutable closed : bool;
}

let connect addr =
  let fd =
    match addr with
    | Unix_sock path ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try Unix.connect fd (Unix.ADDR_UNIX path)
       with e ->
         Unix.close fd;
         raise e);
      fd
    | Tcp (host, port) ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      (try
         let inet =
           if host = "" then Unix.inet_addr_loopback
           else Unix.inet_addr_of_string host
         in
         Unix.connect fd (Unix.ADDR_INET (inet, port))
       with e ->
         Unix.close fd;
         raise e);
      fd
  in
  { fd; dec = Protocol.decoder (); buf = Bytes.create 65536; next_id = 1;
    closed = false }

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let fresh_id t = t.next_id

let take_id t =
  let id = t.next_id in
  (* wire ids are 32-bit; wrap early enough to stay faithful *)
  t.next_id <- (if id >= 0x3fffffff then 1 else id + 1);
  id

let write_all fd s =
  let len = String.length s in
  let b = Bytes.unsafe_of_string s in
  let rec go off =
    if off < len then go (off + Unix.write fd b off (len - off))
  in
  go 0

let send t req = write_all t.fd (Protocol.encode_request req)

let rec recv t =
  match Protocol.next_response t.dec with
  | Protocol.Frame resp -> Ok resp
  | Protocol.Corrupt m -> Error ("corrupt response stream: " ^ m)
  | Protocol.Await -> (
    match Unix.read t.fd t.buf 0 (Bytes.length t.buf) with
    | 0 -> Error "connection closed by server"
    | n ->
      Protocol.feed t.dec (Bytes.sub_string t.buf 0 n);
      recv t
    | exception Unix.Unix_error (e, _, _) ->
      Error ("read failed: " ^ Unix.error_message e))

let call t req =
  send t req;
  match recv t with
  | Error _ as e -> e
  | Ok resp ->
    let want = Protocol.request_id req in
    let got = Protocol.response_id resp in
    (* id 0 is the decoder-failure channel — a real answer, just not
       attributable; anything else must echo our id on this
       one-at-a-time path *)
    if got = want || got = 0 then Ok resp
    else
      Error
        (Printf.sprintf "response id %d does not match request id %d" got want)

let health t = call t (Protocol.Health { id = take_id t })

let compile ?(allow_risky = false) t pattern =
  call t (Protocol.Compile { id = take_id t; pattern; allow_risky })

let scan ?(allow_risky = false) ?(deadline_ms = 0) t ~pattern ~input =
  call t (Protocol.Scan { id = take_id t; pattern; input; deadline_ms; allow_risky })

let ruleset_scan ?(allow_risky = false) ?(deadline_ms = 0) t ~rules ~input =
  call t
    (Protocol.Ruleset_scan { id = take_id t; rules; input; deadline_ms; allow_risky })

let stats t = call t (Protocol.Stats { id = take_id t })
