(* On-disk / loadable container for compiled ALVEARE programs.

   Layout (little-endian):
     bytes 0..3   magic "ALVR"
     byte  4      format version (1)
     byte  5      flags (bit 0: strict 6-bit forward jumps)
     bytes 6..7   reserved, zero
     bytes 8..11  instruction count (uint32)
     then count * 8 bytes: each 43-bit instruction word zero-extended to
     64 bits. Eight-byte alignment keeps the loader trivial; the paper's
   instruction memory would pack 43-bit words natively. *)

let magic = "ALVR"
let version = 1

type error =
  | Bad_magic
  | Bad_version of int
  | Truncated of string
  | Word_error of int * Encoding.error
  | Program_error of Program.error
  | Verify_error of Verify.violation list
  | Io_error of string

let error_message = function
  | Bad_magic -> "bad magic (not an ALVEARE binary)"
  | Bad_version v -> Printf.sprintf "unsupported format version %d" v
  | Truncated what -> "truncated binary: " ^ what
  | Word_error (idx, e) ->
    Printf.sprintf "word %d: %s" idx (Encoding.error_message e)
  | Program_error e -> Program.error_message e
  | Verify_error vs ->
    Printf.sprintf "verifier rejected the program: %s"
      (String.concat "; " (List.map Verify.violation_message vs))
  | Io_error m -> "i/o error: " ^ m

let header_size = 12
let word_size = 8

let size_of_program p = header_size + (word_size * Program.length p)

let to_bytes ?(strict = false) (p : Program.t) : (bytes, error) result =
  match Program.validate p with
  | Error e -> Error (Program_error e)
  | Ok () ->
    let n = Program.length p in
    let buf = Bytes.make (header_size + (word_size * n)) '\000' in
    Bytes.blit_string magic 0 buf 0 4;
    Bytes.set_uint8 buf 4 version;
    Bytes.set_uint8 buf 5 (if strict then 1 else 0);
    Bytes.set_int32_le buf 8 (Int32.of_int n);
    let failure = ref None in
    Array.iteri
      (fun idx i ->
         match Encoding.encode ~strict i with
         | Ok w ->
           Bytes.set_int64_le buf (header_size + (word_size * idx)) (Int64.of_int w)
         | Error e -> if !failure = None then failure := Some (Word_error (idx, e)))
      p;
    (match !failure with Some e -> Error e | None -> Ok buf)

let to_bytes_exn ?strict p =
  match to_bytes ?strict p with
  | Ok b -> b
  | Error e -> invalid_arg ("Binary.to_bytes: " ^ error_message e)

let of_bytes ?(verify = true) (buf : bytes) : (Program.t, error) result =
  let len = Bytes.length buf in
  if len < header_size then Error (Truncated "header")
  else if Bytes.sub_string buf 0 4 <> magic then Error Bad_magic
  else begin
    let v = Bytes.get_uint8 buf 4 in
    if v <> version then Error (Bad_version v)
    else begin
      let n = Int32.to_int (Bytes.get_int32_le buf 8) in
      if n < 0 || len < header_size + (word_size * n) then
        Error (Truncated "instruction words")
      else begin
        let failure = ref None in
        let program =
          Array.init n (fun idx ->
              let w = Int64.to_int (Bytes.get_int64_le buf (header_size + (word_size * idx))) in
              match Encoding.decode w with
              | Ok i -> i
              | Error e ->
                if !failure = None then failure := Some (Word_error (idx, e));
                Instruction.eor)
        in
        match !failure with
        | Some e -> Error e
        | None ->
          (match Program.validate program with
           | Error e -> Error (Program_error e)
           | Ok () ->
             if not verify then Ok program
             else begin
               (* Load-time verification: a decoded image that the
                  static verifier rejects never reaches the core. *)
               match Verify.run program with
               | Ok _ -> Ok program
               | Error vs -> Error (Verify_error vs)
             end)
      end
    end
  end

let write_file ?strict path p =
  match to_bytes ?strict p with
  | Error _ as e -> e
  | Ok buf ->
    let oc = open_out_bin path in
    (try
       output_bytes oc buf;
       close_out oc;
       Ok buf
     with e ->
       close_out_noerr oc;
       raise e)

let read_file ?verify path =
  match
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let buf = Bytes.create len in
    (try
       really_input ic buf 0 len;
       close_in ic
     with e ->
       close_in_noerr ic;
       raise e);
    buf
  with
  | buf -> of_bytes ?verify buf
  | exception Sys_error m -> Error (Io_error m)
  | exception End_of_file -> Error (Io_error (path ^ ": unexpected end of file"))
