(** Textual assembler parsing the disassembler's syntax, so listings
    round-trip ([parse (Program.to_string p) = p]). Handy for
    hand-crafting programs and patching binaries. *)

type error = {
  line : int;
  text : string;
      (** the offending source line (trimmed), [""] when the error is
          not tied to one line *)
  reason : string;
}

val error_message : error -> string

exception Asm_error of error

val parse : string -> (Program.t, error) result
(** Parses and validates a whole program. Leading ["N:"] addresses and
    blank lines are ignored; see the implementation header for the line
    grammar. *)

val parse_exn : string -> Program.t
