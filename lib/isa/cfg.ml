(* CFG construction over Instruction.t arrays, mirroring the controller
   FSM in lib/arch/core.ml edge for edge:

   - a base instruction advances the cursor, then either falls through or
     executes its fused close;
   - a quantifier OPEN enters its body (open+1) and, when the minimum is
     zero (or the maximum is zero), can continue at open+fwd without
     entering it;
   - an alternation OPEN enters its member body and, on rollback, resumes
     at open+bwd (the next member);
   - a plain close falls through; an alternation close jumps to the
     matching OPEN's continuation; a quantified close either loops back
     to the body start or exits to the continuation.

   The core reads the fwd field unconditionally (the enable bit gates
   only bwd), so exit addresses here use fwd as encoded — exactly what
   the hardware would dereference. *)

module I = Instruction

type node_kind =
  | Eor
  | Base of { close : I.close_op option }
  | Open_quant of {
      qmin : int;
      qmax : int option;
      lazy_mode : bool;
      body : int;
      exit : int;
    }
  | Open_alt of {
      body : int;
      next : int option;
      exit : int;
    }
  | Close of I.close_op
  | Junk

type edge_role =
  | Fallthrough
  | Body_entry
  | Skip
  | Alt_next
  | Loop_back
  | Exit

type edge = {
  src : int;
  dst : int;
  role : edge_role;
  consumes : bool;
}

type t = {
  program : Program.t;
  kinds : node_kind array;
  succ : edge list array;
  pairs : (int * int) list;
}

let kind_of_instruction pc (i : I.t) : node_kind =
  if I.is_eor i then Eor
  else if i.I.opn then begin
    match i.I.reference with
    | I.Ref_open o ->
      if o.I.min_enabled || o.I.max_enabled then
        Open_quant
          { qmin = (if o.I.min_enabled then o.I.min_count else 0);
            qmax =
              (if not o.I.max_enabled then None
               else if o.I.max_count = I.unbounded_max then None
               else Some o.I.max_count);
            lazy_mode = o.I.lazy_mode;
            body = pc + 1;
            exit = pc + o.I.fwd }
      else
        Open_alt
          { body = pc + 1;
            next = (if o.I.bwd_enabled then Some (pc + o.I.bwd) else None);
            exit = pc + o.I.fwd }
    | I.Ref_none | I.Ref_chars _ -> Junk
  end
  else begin
    match i.I.base, i.I.close with
    | Some _, close ->
      (match i.I.reference with
       | I.Ref_chars _ -> Base { close }
       | I.Ref_none | I.Ref_open _ -> Junk)
    | None, Some c -> Close c
    | None, None -> Junk (* non-EoR instruction with no operator *)
  end

(* Match closes to opens with a stack scan. Unbalanced closes and
   unclosed opens simply produce no pair — the verifier reports them. *)
let match_pairs (kinds : node_kind array) : (int * int) list =
  let pairs = ref [] in
  let stack = ref [] in
  Array.iteri
    (fun pc k ->
       (match k with
        | Open_quant _ | Open_alt _ -> stack := pc :: !stack
        | Eor | Base _ | Close _ | Junk -> ());
       let closes = match k with
         | Base { close = Some _ } | Close _ -> true
         | Base { close = None } | Eor | Open_quant _ | Open_alt _ | Junk ->
           false
       in
       if closes then begin
         match !stack with
         | open_pc :: rest ->
           stack := rest;
           pairs := (open_pc, pc) :: !pairs
         | [] -> ()
       end)
    kinds;
  List.rev !pairs

(* Edges a close operator at [pc] produces, given its matching open (if
   any). [consumes] is true when the close is fused into a base
   instruction (the base consumed input before the close executed). *)
let close_edges kinds pairs pc (c : I.close_op) ~consumes : edge list =
  let matching =
    List.filter_map (fun (o, cl) -> if cl = pc then Some o else None) pairs
  in
  match c, matching with
  | I.Close, _ -> [ { src = pc; dst = pc + 1; role = Fallthrough; consumes } ]
  | I.Alt_close, [ open_pc ] ->
    (match kinds.(open_pc) with
     | Open_alt { exit; _ } | Open_quant { exit; _ } ->
       [ { src = pc; dst = exit; role = Exit; consumes } ]
     | Eor | Base _ | Close _ | Junk -> [])
  | (I.Quant_greedy | I.Quant_lazy), [ open_pc ] ->
    (match kinds.(open_pc) with
     | Open_quant { body; exit; _ } ->
       [ { src = pc; dst = body; role = Loop_back; consumes };
         { src = pc; dst = exit; role = Exit; consumes } ]
     | Open_alt { exit; _ } ->
       (* kind mismatch (flagged by the verifier); the exit address is
          still what the context would carry *)
       [ { src = pc; dst = exit; role = Exit; consumes } ]
     | Eor | Base _ | Close _ | Junk -> [])
  | (I.Alt_close | I.Quant_greedy | I.Quant_lazy), _ -> []

let build (program : Program.t) : t =
  let n = Array.length program in
  let kinds = Array.mapi kind_of_instruction program in
  let pairs = match_pairs kinds in
  let in_range e = e.dst >= 0 && e.dst < n in
  let succ =
    Array.mapi
      (fun pc k ->
         let edges =
           match k with
           | Eor | Junk -> []
           | Base { close = None } ->
             [ { src = pc; dst = pc + 1; role = Fallthrough; consumes = true } ]
           | Base { close = Some c } ->
             close_edges kinds pairs pc c ~consumes:true
           | Close c -> close_edges kinds pairs pc c ~consumes:false
           | Open_quant { qmin; qmax; body; exit; _ } ->
             let entry =
               { src = pc; dst = body; role = Body_entry; consumes = false }
             in
             (* The core continues at the exit without entering the body
                only when the minimum is zero (greedy/lazy alike) or the
                maximum is zero. *)
             if qmin = 0 || qmax = Some 0 then
               [ entry; { src = pc; dst = exit; role = Skip; consumes = false } ]
             else [ entry ]
           | Open_alt { body; next; _ } ->
             let entry =
               { src = pc; dst = body; role = Body_entry; consumes = false }
             in
             (match next with
              | Some dst ->
                [ entry; { src = pc; dst; role = Alt_next; consumes = false } ]
              | None -> [ entry ])
         in
         List.filter in_range edges)
      kinds
  in
  { program; kinds; succ; pairs }

let successors t pc = t.succ.(pc)

let edge_count t = Array.fold_left (fun acc es -> acc + List.length es) 0 t.succ

(* The quantified-close loop back is excluded: past the minimum count the
   core cuts off zero-width iterations (cursor = iteration start exits
   the loop), and the below-minimum iterations are bounded by the 6-bit
   counter, so that edge alone can never diverge. *)
let epsilon_edge e = (not e.consumes) && e.role <> Loop_back

let pp_role ppf = function
  | Fallthrough -> Fmt.string ppf "fall"
  | Body_entry -> Fmt.string ppf "body"
  | Skip -> Fmt.string ppf "skip"
  | Alt_next -> Fmt.string ppf "alt-next"
  | Loop_back -> Fmt.string ppf "loop"
  | Exit -> Fmt.string ppf "exit"

let pp_kind ppf = function
  | Eor -> Fmt.string ppf "eor"
  | Base { close = None } -> Fmt.string ppf "base"
  | Base { close = Some c } -> Fmt.pf ppf "base+%a" I.pp_close_op c
  | Open_quant { qmin; qmax; lazy_mode; _ } ->
    Fmt.pf ppf "open-quant{%d,%s}%s" qmin
      (match qmax with Some m -> string_of_int m | None -> "inf")
      (if lazy_mode then " lazy" else "")
  | Open_alt _ -> Fmt.string ppf "open-alt"
  | Close c -> Fmt.pf ppf "close %a" I.pp_close_op c
  | Junk -> Fmt.string ppf "junk"

let pp ppf t =
  Array.iteri
    (fun pc k ->
       Fmt.pf ppf "%3d: %-22s" pc (Fmt.str "%a" pp_kind k);
       List.iter
         (fun e ->
            Fmt.pf ppf " %a->%d%s" pp_role e.role e.dst
              (if e.consumes then "!" else ""))
         t.succ.(pc);
       Fmt.pf ppf "@.")
    t.kinds
