(* Static verifier over instruction arrays (bytecode-verifier style).

   Phases:
   1. structural — per-instruction well-formedness, EoR placement,
      open/close balance and kind compatibility, jump-target ranges
      (every field the core dereferences, enable bits notwithstanding);
   2. graph — only when phase 1 is clean (a broken structure makes
      reachability meaningless): CFG reachability from address 0, and
      zero-advance cycle detection by DFS over the epsilon sub-graph;
   3. accounting — static sub-RE nesting depth and a worst-case
      speculation-stack bound: a bounded quantifier {n,m} multiplies its
      body's bound by at most m+1 snapshots (one per completed iteration
      plus the entry push), an alternation member adds its rollback
      push, sequence sums (snapshots persist until rollback, so
      concurrent liveness across siblings is real, not worst-case
      pessimism); any unbounded quantifier makes the depth
      input-dependent (None).

   The rejection modes mirror the non-termination analysis of
   backtracking matchers (Rathnayake & Thielecke): a verified program
   cannot jump outside its image, cannot abort on a context-mismatched
   close, and cannot loop without consuming input. *)

module I = Instruction

type violation =
  | Malformed_instruction of { pc : int; error : I.error }
  | Empty_program
  | Missing_eor
  | Interior_eor of { pc : int }
  | Bad_jump of { pc : int; which : string; target : int; length : int }
  | Unbalanced_close of { pc : int }
  | Unclosed_open of { pc : int }
  | Close_mismatch of { open_pc : int; close_pc : int; reason : string }
  | Unreachable of { pc : int }
  | Epsilon_loop of { cycle : int list }

let violation_message = function
  | Malformed_instruction { pc; error } ->
    Printf.sprintf "pc %d: malformed instruction: %s" pc
      (I.error_message error)
  | Empty_program -> "empty program"
  | Missing_eor -> "program does not end with EoR"
  | Interior_eor { pc } ->
    Printf.sprintf "pc %d: EoR in the middle of the program" pc
  | Bad_jump { pc; which; target; length } ->
    Printf.sprintf "pc %d: %s jump targets address %d outside program [0,%d)"
      pc which target length
  | Unbalanced_close { pc } ->
    Printf.sprintf "pc %d: close without a matching open" pc
  | Unclosed_open { pc } ->
    Printf.sprintf "pc %d: open sub-RE never closed" pc
  | Close_mismatch { open_pc; close_pc; reason } ->
    Printf.sprintf "pc %d: close does not match open at pc %d: %s" close_pc
      open_pc reason
  | Unreachable { pc } ->
    Printf.sprintf "pc %d: unreachable instruction (dead code)" pc
  | Epsilon_loop { cycle } ->
    Printf.sprintf "zero-advance cycle through pc [%s]: program can loop \
                    without consuming input"
      (String.concat "; " (List.map string_of_int cycle))

let pp_violation ppf v = Fmt.string ppf (violation_message v)

type report = {
  instructions : int;
  reachable : int;
  cfg_edges : int;
  pairs : (int * int) list;
  open_depth : int;
  stack_bound : int option;
  warnings : string list;
}

let pp_report ppf r =
  Fmt.pf ppf
    "instructions: %d@.reachable: %d@.cfg edges: %d@.sub-RE pairs: %d@.\
     max nesting: %d@.speculation-stack bound: %s@."
    r.instructions r.reachable r.cfg_edges (List.length r.pairs) r.open_depth
    (match r.stack_bound with
     | Some b -> string_of_int b
     | None -> "unbounded (input-dependent)");
  List.iter (fun w -> Fmt.pf ppf "warning: %s@." w) r.warnings

(* Primary sort key: the address a violation points at. *)
let violation_pc length = function
  | Empty_program -> 0
  | Missing_eor -> length
  | Malformed_instruction { pc; _ } | Interior_eor { pc } | Bad_jump { pc; _ }
  | Unbalanced_close { pc } | Unclosed_open { pc } | Unreachable { pc } ->
    pc
  | Close_mismatch { close_pc; _ } -> close_pc
  | Epsilon_loop { cycle } -> (match cycle with pc :: _ -> pc | [] -> 0)

(* --- Phase 1: structure ------------------------------------------------ *)

let structural_violations (p : Program.t) : violation list * string list =
  let n = Array.length p in
  let out = ref [] in
  let warnings = ref [] in
  let add v = out := v :: !out in
  let warn w = warnings := w :: !warnings in
  if n = 0 then ([ Empty_program ], [])
  else begin
    if not (I.is_eor p.(n - 1)) then add Missing_eor;
    Array.iteri
      (fun pc i ->
         (match I.validate i with
          | Error e -> add (Malformed_instruction { pc; error = e })
          | Ok () -> ());
         if pc < n - 1 && I.is_eor i then add (Interior_eor { pc });
         (* Jump ranges: the core dereferences fwd unconditionally (the
            enable bit gates only bwd), so every encoded target must be
            in range. *)
         match i.I.reference with
         | I.Ref_open o ->
           let fwd_target = pc + o.I.fwd in
           if fwd_target >= n then
             add (Bad_jump { pc; which = "forward"; target = fwd_target;
                             length = n });
           let bwd_target = pc + o.I.bwd in
           if o.I.bwd_enabled && (bwd_target < 0 || bwd_target >= n) then
             add (Bad_jump { pc; which = "backward"; target = bwd_target;
                             length = n });
           if (o.I.min_enabled || o.I.max_enabled) && not o.I.fwd_enabled then
             warn
               (Printf.sprintf
                  "pc %d: quantifier OPEN with a disabled forward-jump \
                   enable bit (the core jumps to %d regardless)"
                  pc fwd_target)
         | I.Ref_none | I.Ref_chars _ -> ())
      p;
    (* Open/close balance and context-kind compatibility. *)
    let stack = ref [] in
    Array.iteri
      (fun pc i ->
         if i.I.opn then stack := pc :: !stack;
         match i.I.close with
         | None -> ()
         | Some c ->
           (match !stack with
            | [] -> add (Unbalanced_close { pc })
            | open_pc :: rest ->
              stack := rest;
              (match p.(open_pc).I.reference with
               | I.Ref_open o ->
                 let quantified = o.I.min_enabled || o.I.max_enabled in
                 (match c, quantified with
                  | (I.Quant_greedy | I.Quant_lazy), false ->
                    add
                      (Close_mismatch
                         { open_pc; close_pc = pc;
                           reason = "quantified close against an \
                                     alternation-member OPEN" })
                  | (I.Close | I.Alt_close), true ->
                    add
                      (Close_mismatch
                         { open_pc; close_pc = pc;
                           reason = "plain/alternation close against a \
                                     quantifier OPEN" })
                  | I.Quant_greedy, true when o.I.lazy_mode ->
                    warn
                      (Printf.sprintf
                         "pc %d: greedy close against a lazy OPEN at pc %d \
                          (the OPEN's mode wins)" pc open_pc)
                  | I.Quant_lazy, true when not o.I.lazy_mode ->
                    warn
                      (Printf.sprintf
                         "pc %d: lazy close against a greedy OPEN at pc %d \
                          (the OPEN's mode wins)" pc open_pc)
                  | _, _ -> ())
               | I.Ref_none | I.Ref_chars _ ->
                 (* malformed open, already reported *)
                 ())))
      p;
    List.iter (fun pc -> add (Unclosed_open { pc })) !stack;
    (List.rev !out, List.rev !warnings)
  end

(* --- Phase 2: graph ---------------------------------------------------- *)

let reachability (cfg : Cfg.t) : bool array =
  let n = Array.length cfg.Cfg.kinds in
  let seen = Array.make n false in
  let rec visit pc =
    if pc >= 0 && pc < n && not seen.(pc) then begin
      seen.(pc) <- true;
      List.iter (fun e -> visit e.Cfg.dst) (Cfg.successors cfg pc)
    end
  in
  if n > 0 then visit 0;
  seen

(* First zero-advance cycle in the epsilon sub-graph (DFS, grey/black
   colouring); the returned addresses form the loop in execution order. *)
let epsilon_cycle (cfg : Cfg.t) : int list option =
  let n = Array.length cfg.Cfg.kinds in
  let colour = Array.make n 0 in
  (* 0 white, 1 grey, 2 black *)
  let found = ref None in
  let rec visit path pc =
    if !found = None then begin
      colour.(pc) <- 1;
      List.iter
        (fun e ->
           if !found = None && Cfg.epsilon_edge e then begin
             let dst = e.Cfg.dst in
             if colour.(dst) = 1 then begin
               let rec cut = function
                 | [] -> []
                 | x :: rest -> if x = dst then [ x ] else x :: cut rest
               in
               found := Some (List.rev (cut (pc :: path)))
             end
             else if colour.(dst) = 0 then visit (pc :: path) dst
           end)
        (Cfg.successors cfg pc);
      colour.(pc) <- 2
    end
  in
  for pc = 0 to n - 1 do
    if colour.(pc) = 0 && !found = None then visit [] pc
  done;
  !found

(* --- Phase 3: accounting ----------------------------------------------- *)

let ( +? ) a b =
  match a, b with Some a, Some b -> Some (a + b) | _, _ -> None

(* Worst-case speculation-stack depth of the region [lo, hi). Gated on a
   clean phase 1, so every open in the region has its matching close. *)
let rec stack_bound_region (kinds : Cfg.node_kind array) close_of lo hi
  : int option =
  if lo >= hi then Some 0
  else begin
    match kinds.(lo) with
    | Cfg.Open_quant { qmax; _ } ->
      let close = close_of lo in
      let inner = stack_bound_region kinds close_of (lo + 1) close in
      let this =
        match qmax, inner with
        | Some m, Some b -> Some ((m + 1) * (b + 1))
        | None, _ | _, None -> None
      in
      this +? stack_bound_region kinds close_of (close + 1) hi
    | Cfg.Open_alt { next; _ } ->
      let close = close_of lo in
      let inner = stack_bound_region kinds close_of (lo + 1) close in
      let this =
        match inner with
        | Some b -> Some ((if next <> None then 1 else 0) + b)
        | None -> None
      in
      this +? stack_bound_region kinds close_of (close + 1) hi
    | Cfg.Eor | Cfg.Base _ | Cfg.Close _ | Cfg.Junk ->
      stack_bound_region kinds close_of (lo + 1) hi
  end

let open_depth (p : Program.t) : int =
  let depth = ref 0 and best = ref 0 in
  Array.iter
    (fun (i : I.t) ->
       if i.I.opn then begin
         incr depth;
         if !depth > !best then best := !depth
       end;
       match i.I.close with
       | Some _ -> if !depth > 0 then decr depth
       | None -> ())
    p;
  !best

(* --- Driver ------------------------------------------------------------ *)

let run (p : Program.t) : (report, violation list) result =
  let n = Array.length p in
  let sort vs =
    List.stable_sort
      (fun a b -> compare (violation_pc n a) (violation_pc n b))
      vs
  in
  let structural, warnings = structural_violations p in
  if structural <> [] then Error (sort structural)
  else begin
    let cfg = Cfg.build p in
    let seen = reachability cfg in
    let dead = ref [] in
    Array.iteri
      (fun pc reached -> if not reached then dead := Unreachable { pc } :: !dead)
      seen;
    let graph_violations =
      List.rev !dead
      @ (match epsilon_cycle cfg with
         | Some cycle -> [ Epsilon_loop { cycle } ]
         | None -> [])
    in
    if graph_violations <> [] then Error (sort graph_violations)
    else begin
      let close_table = Hashtbl.create 16 in
      List.iter
        (fun (o, c) -> Hashtbl.replace close_table o c)
        cfg.Cfg.pairs;
      let close_of o = Hashtbl.find close_table o in
      let reachable = Array.fold_left (fun k r -> if r then k + 1 else k) 0 seen in
      Ok
        { instructions = n;
          reachable;
          cfg_edges = Cfg.edge_count cfg;
          pairs = cfg.Cfg.pairs;
          open_depth = open_depth p;
          stack_bound = stack_bound_region cfg.Cfg.kinds close_of 0 n;
          warnings }
    end
  end

let run_exn p =
  match run p with
  | Ok r -> r
  | Error (v :: _) -> invalid_arg ("Verify.run: " ^ violation_message v)
  | Error [] -> invalid_arg "Verify.run: rejected with no violations"
