(** Loadable container format for compiled programs ("ALVR" magic,
    version byte, instruction count, one 64-bit little-endian word per
    43-bit instruction). *)

val magic : string
val version : int
val header_size : int
val word_size : int

type error =
  | Bad_magic
  | Bad_version of int
  | Truncated of string
  | Word_error of int * Encoding.error
  | Program_error of Program.error
  | Verify_error of Verify.violation list
      (** the image decodes but the static verifier rejects it *)
  | Io_error of string

val error_message : error -> string

val size_of_program : Program.t -> int
(** Size in bytes of the serialised form. *)

val to_bytes : ?strict:bool -> Program.t -> (bytes, error) result
(** Serialise a validated program. [strict] is forwarded to
    {!Encoding.encode}. *)

val to_bytes_exn : ?strict:bool -> Program.t -> bytes

val of_bytes : ?verify:bool -> bytes -> (Program.t, error) result
(** Parse and fully validate a binary image. With [verify] (the
    default) the static verifier ({!Verify.run}) must also accept the
    program — jump targets in range, no dead code, balanced
    speculation, no zero-advance cycles — so a corrupted or adversarial
    image is rejected before it can reach the core. [~verify:false]
    restores the load-time structural checks only. Never raises: every
    failure mode is a structured [error]. *)

val write_file : ?strict:bool -> string -> Program.t -> (bytes, error) result
val read_file : ?verify:bool -> string -> (Program.t, error) result
(** [verify] as in {!of_bytes}. I/O failures return [Io_error]. *)
