(** Control-flow graph over a compiled program — the substrate of the
    binary verifier. Nodes are instruction addresses; edges model every
    control transfer the speculative core can take: fallthrough, body
    entry, quantifier skip, alternation rollback, quantified-close loop
    back and sub-RE exit. Each edge records whether traversing it
    consumes input, which is what the zero-advance (epsilon-loop)
    analysis keys on. *)

(** Decoded role of an instruction in the graph. *)
type node_kind =
  | Eor
  | Base of { close : Instruction.close_op option }
      (** consuming instruction, possibly with a fused close *)
  | Open_quant of {
      qmin : int;
      qmax : int option;  (** [None] = unbounded *)
      lazy_mode : bool;
      body : int;         (** first body address, open + 1 *)
      exit : int;         (** continuation address, open + fwd *)
    }
  | Open_alt of {
      body : int;
      next : int option;  (** next member's OPEN (rollback path) *)
      exit : int;         (** end of the whole chain, open + fwd *)
    }
  | Close of Instruction.close_op  (** standalone close *)
  | Junk  (** malformed instruction — no outgoing edges *)

type edge_role =
  | Fallthrough  (** next instruction after a base or plain close *)
  | Body_entry   (** OPEN → first body instruction *)
  | Skip         (** quantifier OPEN → exit without entering the body *)
  | Alt_next     (** alternation OPEN → next member (rollback target) *)
  | Loop_back    (** quantified close → body start; progress-guarded by
                     the core's zero-width-iteration cutoff, so it never
                     participates in a zero-advance cycle *)
  | Exit         (** close → the matching OPEN's continuation *)

type edge = {
  src : int;
  dst : int;
  role : edge_role;
  consumes : bool;  (** the edge is only taken after consuming input *)
}

type t = {
  program : Program.t;
  kinds : node_kind array;
  succ : edge list array;
  pairs : (int * int) list;
      (** matched (open, close) address pairs; a fused close is
          identified by its carrier instruction's address *)
}

val build : Program.t -> t
(** Total on arbitrary instruction arrays: malformed instructions become
    {!Junk}, unmatched closes get no exit edges, and edges whose target
    falls outside the program are dropped (the verifier reports those as
    violations instead). *)

val successors : t -> int -> edge list

val edge_count : t -> int

val epsilon_edge : edge -> bool
(** True for edges traversable without consuming input and without a
    progress guard — the sub-graph searched for zero-advance cycles. *)

val pp : t Fmt.t
(** One line per node: address, kind, outgoing edges. *)
