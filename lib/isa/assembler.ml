(* Textual assembler for ALVEARE programs: parses the same syntax the
   disassembler ({!Program.pp} / {!Instruction.pp}) prints, so listings
   round-trip. Useful for hand-crafting programs in tests and for
   patching compiled binaries.

   Line syntax (leading "N:" addresses and blank lines are ignored):

     EOR
     ( {MIN,MAX}[ lazy] bwd=(N|-) fwd=(N|-)
     [NOT] (AND|OR|RANGE) 'CHARS' [CLOSE]
     CLOSE                                  -- standalone close

   where MIN/MAX are integers, "inf" (unbounded max) or "-" (disabled);
   CLOSE is one of ")", ")QUANT", ")QUANT?", ")|"; and CHARS uses \xNN
   escapes for bytes outside the printable range. *)

type error = {
  line : int;
  text : string;  (* the offending source line, "" when not line-specific *)
  reason : string;
}

let error_message { line; text; reason } =
  if String.trim text = "" then
    Printf.sprintf "assembly error at line %d: %s" line reason
  else
    Printf.sprintf "assembly error at line %d: %s\n  %d | %s" line reason line
      text

exception Asm_error of error

(* Helpers raise with the line number only; [parse] attaches the source
   line text at the boundary, where the split lines are in scope. *)
let fail line reason = raise (Asm_error { line; text = ""; reason })

(* Split a line into whitespace-separated tokens, keeping quoted char
   blocks ('...') as single tokens. *)
let tokens_of_line lineno s =
  let n = String.length s in
  let out = ref [] in
  let rec skip i = if i < n && (s.[i] = ' ' || s.[i] = '\t') then skip (i + 1) else i in
  let rec word i j =
    if j < n && s.[j] <> ' ' && s.[j] <> '\t' && s.[j] <> '\'' then word i (j + 1)
    else (String.sub s i (j - i), j)
  in
  let rec quoted i j =
    if j >= n then fail lineno "unterminated quoted chars"
    else if s.[j] = '\'' then (String.sub s i (j - i), j + 1)
    else quoted i (j + 1)
  in
  let rec go i =
    let i = skip i in
    if i >= n then ()
    else if s.[i] = '\'' then begin
      let w, j = quoted (i + 1) (i + 1) in
      out := ("'" ^ w ^ "'") :: !out;
      go j
    end
    else begin
      let w, j = word i i in
      if w <> "" then out := w :: !out;
      go (max j (i + 1))
    end
  in
  go 0;
  List.rev !out

let unescape_chars lineno s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let hex c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> fail lineno "bad \\x escape in chars"
  in
  let rec go i =
    if i >= n then ()
    else if s.[i] = '\\' && i + 3 < n && s.[i + 1] = 'x' then begin
      Buffer.add_char buf (Char.chr ((hex s.[i + 2] * 16) + hex s.[i + 3]));
      go (i + 4)
    end
    else begin
      Buffer.add_char buf s.[i];
      go (i + 1)
    end
  in
  go 0;
  Buffer.contents buf

let close_of_token = function
  | ")" -> Some Instruction.Close
  | ")QUANT" -> Some Instruction.Quant_greedy
  | ")QUANT?" -> Some Instruction.Quant_lazy
  | ")|" -> Some Instruction.Alt_close
  | _ -> None

let base_of_token = function
  | "AND" -> Some Instruction.And
  | "OR" -> Some Instruction.Or
  | "RANGE" -> Some Instruction.Range
  | _ -> None

(* "{1,inf}" / "{-,5}" -> (min_enabled, min, max_enabled, max) *)
let parse_counts lineno tok =
  let n = String.length tok in
  if n < 2 || tok.[0] <> '{' || tok.[n - 1] <> '}' then
    fail lineno "expected {min,max}"
  else begin
    match String.split_on_char ',' (String.sub tok 1 (n - 2)) with
    | [ lo; hi ] ->
      let field = function
        | "-" -> (false, 0)
        | "inf" -> (true, Instruction.unbounded_max)
        | v ->
          (match int_of_string_opt v with
           | Some k -> (true, k)
           | None -> fail lineno ("bad counter " ^ v))
      in
      let min_enabled, min_count = field lo in
      let max_enabled, max_count = field hi in
      (min_enabled, min_count, max_enabled, max_count)
    | _ -> fail lineno "expected {min,max}"
  end

let parse_jump lineno tok prefix =
  let plen = String.length prefix in
  if String.length tok < plen || String.sub tok 0 plen <> prefix then
    fail lineno ("expected " ^ prefix ^ "N")
  else begin
    match String.sub tok plen (String.length tok - plen) with
    | "-" -> (false, 0)
    | v ->
      (match int_of_string_opt v with
       | Some k -> (true, k)
       | None -> fail lineno ("bad jump " ^ v))
  end

let parse_open lineno toks =
  match toks with
  | counts :: rest ->
    let min_enabled, min_count, max_enabled, max_count =
      parse_counts lineno counts
    in
    let lazy_mode, rest =
      match rest with
      | "lazy" :: more -> (true, more)
      | more -> (false, more)
    in
    (match rest with
     | [ bwd_tok; fwd_tok ] ->
       let bwd_enabled, bwd = parse_jump lineno bwd_tok "bwd=" in
       let fwd_enabled, fwd = parse_jump lineno fwd_tok "fwd=" in
       Instruction.open_sub
         { Instruction.min_enabled; max_enabled; bwd_enabled; fwd_enabled;
           lazy_mode; min_count; max_count; bwd; fwd }
     | _ -> fail lineno "open needs bwd= and fwd=")
  | [] -> fail lineno "open needs {min,max}"

let parse_instruction lineno toks =
  match toks with
  | [ "EOR" ] -> Instruction.eor
  | "(" :: rest -> parse_open lineno rest
  | [ single ] when close_of_token single <> None ->
    Instruction.close (Option.get (close_of_token single))
  | toks ->
    let neg, toks =
      match toks with "NOT" :: rest -> (true, rest) | rest -> (false, rest)
    in
    (match toks with
     | op_tok :: quoted :: rest when base_of_token op_tok <> None ->
       let op = Option.get (base_of_token op_tok) in
       let n = String.length quoted in
       if n < 2 || quoted.[0] <> '\'' || quoted.[n - 1] <> '\'' then
         fail lineno "expected quoted chars"
       else begin
         let chars = unescape_chars lineno (String.sub quoted 1 (n - 2)) in
         let instr = Instruction.base ~neg op chars in
         match rest with
         | [] -> instr
         | [ close_tok ] ->
           (match close_of_token close_tok with
            | Some c -> Instruction.fuse_close instr c
            | None -> fail lineno ("unexpected token " ^ close_tok))
         | _ -> fail lineno "trailing tokens"
       end
     | t :: _ -> fail lineno ("unexpected token " ^ t)
     | [] -> fail lineno "empty instruction")

(* Strip an optional leading "N:" address. *)
let strip_address toks =
  match toks with
  | addr :: rest when String.length addr > 0 && addr.[String.length addr - 1] = ':'
    -> rest
  | toks -> toks

(* Map a whole-program validation error back to the instruction it
   points at, so the diagnostic names the source line, not "line 0". *)
let pc_of_program_error (e : Program.error) n =
  match e with
  | Program.Empty_program -> None
  | Program.Missing_eor -> if n > 0 then Some (n - 1) else None
  | Program.Interior_eor pc | Program.Instruction_error (pc, _)
  | Program.Jump_out_of_range (pc, _) | Program.Unbalanced_close pc
  | Program.Unclosed_open pc ->
    Some pc

let parse (source : string) : (Program.t, error) result =
  let lines = Array.of_list (String.split_on_char '\n' source) in
  let line_text lineno =
    if lineno >= 1 && lineno <= Array.length lines then
      String.trim lines.(lineno - 1)
    else ""
  in
  match
    Array.to_list lines
    |> List.mapi (fun k line -> (k + 1, line))
    |> List.filter_map (fun (lineno, line) ->
        let toks = strip_address (tokens_of_line lineno line) in
        match toks with
        | [] -> None
        | toks -> Some (lineno, parse_instruction lineno toks))
  with
  | entries ->
    let program = Array.of_list (List.map snd entries) in
    (match Program.validate program with
     | Ok () -> Ok program
     | Error e ->
       let line =
         match pc_of_program_error e (Array.length program) with
         | Some pc when pc < List.length entries -> fst (List.nth entries pc)
         | Some _ | None -> 0
       in
       Error { line; text = line_text line; reason = Program.error_message e })
  | exception Asm_error e -> Error { e with text = line_text e.line }

let parse_exn source =
  match parse source with
  | Ok p -> p
  | Error e -> invalid_arg ("Assembler.parse: " ^ error_message e)
