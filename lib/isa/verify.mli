(** Binary/program verifier (bytecode-verifier style).

    Statically proves that an instruction array is safe to hand to the
    speculative core: every jump target lands inside the program, every
    instruction is reachable, speculation pushes and pops balance (each
    OPEN has a close of the matching kind) with a computed worst-case
    stack depth, and no cycle of non-consuming edges exists — the
    zero-advance divergence mode of backtracking matchers.

    [run] accepts arbitrary instruction arrays (no prior
    {!Program.validate} required) and collects EVERY violation rather
    than stopping at the first, so a corrupted image produces a full
    diagnosis. *)

type violation =
  | Malformed_instruction of { pc : int; error : Instruction.error }
  | Empty_program
  | Missing_eor
  | Interior_eor of { pc : int }
  | Bad_jump of { pc : int; which : string; target : int; length : int }
      (** a jump field the core would dereference lands outside the
          program; [which] is ["forward"] or ["backward"] *)
  | Unbalanced_close of { pc : int }  (** close with no open to match *)
  | Unclosed_open of { pc : int }     (** open never closed *)
  | Close_mismatch of { open_pc : int; close_pc : int; reason : string }
      (** the close kind cannot terminate this open's context (e.g. a
          quantified close against an alternation OPEN) — the core
          aborts on this at runtime *)
  | Unreachable of { pc : int }  (** dead instruction *)
  | Epsilon_loop of { cycle : int list }
      (** addresses of a cycle traversable without consuming input —
          the program can diverge at a fixed cursor *)

val violation_message : violation -> string
val pp_violation : violation Fmt.t

type report = {
  instructions : int;
  reachable : int;        (** = [instructions] for a clean program *)
  cfg_edges : int;
  pairs : (int * int) list;  (** matched (open, close) address pairs *)
  open_depth : int;          (** maximum static sub-RE nesting *)
  stack_bound : int option;
      (** worst-case speculation-stack depth over any input; [None] when
          an unbounded quantifier makes it input-dependent *)
  warnings : string list;
      (** suspicious but executable constructs (e.g. a greedy OPEN
          closed by a lazy close, a disabled forward-jump enable bit on
          a quantifier) *)
}

val pp_report : report Fmt.t

val run : Program.t -> (report, violation list) result
(** Violations are ordered by program address. *)

val run_exn : Program.t -> report
(** @raise Invalid_argument listing the first violation. *)
