(* Bench regression gate: diff a fresh bench_output.json against the
   checked-in BENCH_BASELINE.json and fail (exit 1) when the run shows a
   real regression:

   - the geometric mean over the shared alveare/... bechamel timings
     more than 20% slower than the baseline (ns/run, lower is better).
     The mean, not each timing: back-to-back runs on a shared machine
     drift individual microbenchmarks by 30-50%, so a per-timing 20%
     gate flakes on noise alone. A single timing still hard-fails when
     it is more than 2x the baseline (catastrophic, not noise), and
     per-timing drift past 20% is printed as a warning;
   - any .../hits-identical flag not 1 — prefilter/... (the prefilter
     changed the match report) or opt/... (the rewrite optimiser
     changed it): a correctness bug, not a perf question;
   - the opt/... gates: opt/reduction (geomean emitted-size reduction
     over the 600-rule lint-sweep corpus, optimiser on vs off) must
     stay >= 10%, and opt/attempts-delta (scan-subset backtracking
     attempts, optimised minus unoptimised) must stay <= 0 — both
     deterministic, so immune to machine drift;
   - the plan/... gates: the hits-identical and stats-identical flags
     must be 1 (the pre-decoded plan executor must be indistinguishable
     from the legacy interpreter down to every counter), and
     plan/speedup — plan vs legacy measured in the SAME run, so immune
     to machine drift and baseline refreshes — must stay >= 2x;
   - the plan/dfa-... gates: same shape for the lazy-DFA overlay —
     hits- and stats-identical flags must be 1 (the overlay must be
     indistinguishable from the plain plan path down to every counter)
     and plan/dfa-speedup (overlay vs plan, same run, dense
     non-literal corpus) must stay >= 2x;
   - no workload left with an attempts-ratio >= 2 (the prefilter's
     reason to exist: at least one unanchored ruleset scan must start
     2x fewer attempts than the dense scan);
   - any server/.../results-identical flag not 1 (a daemon response
     diverged from the direct library scan of the same slice — a
     serving-layer correctness bug);
   - the ext/... gates: ext/hits-identical (every policy rule's served
     spans — lowered ISA program or derivative engine — must equal a
     fresh derivative oracle's) and at least one rule on EACH backend
     (ext/lowered-rules >= 1 and ext/derivative-rules >= 1), all
     deterministic;
   - a server/... latency entry (-ns suffix) more than 2x its baseline,
     or a server/.../throughput-rps below half its baseline. Wide
     envelopes for the same reason as the timing gate: the serving
     bench shares the machine with everything else.

   Counters other than the gated ones are informational. Wired as the
   @benchcheck alias — deliberately not part of the default runtest,
   because wall-clock gates belong in an opt-in lane, not in every
   sandboxed test run.

     dune build @benchcheck
     dune exec bench/compare.exe -- BENCH_BASELINE.json bench_output.json

   BENCH_BASELINE.json holds the element-wise noise envelope (slowest
   observed value) of the wall-clock entries over the runs used to
   establish it, with the deterministic counters (attempts, offsets,
   hits) taken verbatim — they must never vary between runs. Refresh it
   by re-running the bench a few times and keeping the per-timing max.
*)

let regression_slack = 1.20 (* suite geomean >20% slower than baseline fails *)
let required_opt_reduction = 10.0 (* geomean emitted-size reduction, percent *)
let outlier_slack = 2.0 (* any single timing >2x baseline fails *)
let required_attempts_ratio = 2.0
let required_plan_speedup = 2.0 (* plan executor vs legacy, same-run ratio *)
let required_dfa_speedup = 2.0 (* lazy-DFA overlay vs plain plan, same-run ratio *)
let required_onepass_speedup = 2.0 (* fused ruleset sweep vs per-rule, same-run *)
let server_latency_slack = 2.0 (* server/... -ns entries: >2x baseline fails *)
let server_throughput_slack = 0.5 (* throughput-rps below half baseline fails *)
let analysis_ms_budget = 2.0 (* analysis geomean ms/rule, absolute ceiling *)

(* The JSON both files carry is the flat {"name": number} map
   bench/main.ml writes; a line-oriented parse of that shape keeps the
   gate dependency-free. Anything else is rejected loudly. *)
let parse path : (string * float) list =
  let ic = open_in path in
  let entries = ref [] in
  (try
     while true do
       let line = String.trim (input_line ic) in
       if line = "" || line = "{" || line = "}" then ()
       else begin
         match String.index_opt line '"' with
         | None -> failwith (Printf.sprintf "%s: unparseable line %S" path line)
         | Some q0 ->
           let q1 = String.index_from line (q0 + 1) '"' in
           let name = String.sub line (q0 + 1) (q1 - q0 - 1) in
           let colon = String.index_from line q1 ':' in
           let value =
             let v = String.sub line (colon + 1) (String.length line - colon - 1) in
             let v = String.trim v in
             let v =
               if String.length v > 0 && v.[String.length v - 1] = ',' then
                 String.sub v 0 (String.length v - 1)
               else v
             in
             float_of_string v
           in
           entries := (name, value) :: !entries
       end
     done
   with End_of_file -> close_in ic);
  List.rev !entries

let () =
  let baseline_path, fresh_path =
    match Sys.argv with
    | [| _; b; f |] -> (b, f)
    | _ ->
      prerr_endline "usage: compare BASELINE.json FRESH.json";
      exit 2
  in
  let baseline = parse baseline_path in
  let fresh = parse fresh_path in
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in
  let prefix p (n, _) = String.length n >= String.length p
                        && String.sub n 0 (String.length p) = p in
  let suffix s n = String.length n >= String.length s
                   && String.sub n (String.length n - String.length s)
                        (String.length s) = s in
  (* Throughput gate over the shared bechamel timings: suite geometric
     mean within 20% of baseline; any single timing past 2x fails. *)
  let compared = ref 0 in
  let log_ratio_sum = ref 0.0 in
  List.iter
    (fun (name, fresh_ns) ->
       match List.assoc_opt name baseline with
       | None -> ()
       | Some base_ns ->
         incr compared;
         let ratio = fresh_ns /. base_ns in
         log_ratio_sum := !log_ratio_sum +. log ratio;
         if ratio > outlier_slack then
           fail "%s: %.0f ns/run vs baseline %.0f (%.1fx, outlier limit %.0fx)"
             name fresh_ns base_ns ratio outlier_slack
         else if ratio > regression_slack then
           Printf.printf
             "benchcheck warn: %s %.0f ns/run vs baseline %.0f \
              (%.0f%% slower — within machine noise, not gated per-timing)\n"
             name fresh_ns base_ns (100.0 *. (ratio -. 1.0)))
    (List.filter (prefix "alveare/") fresh);
  if !compared = 0 then
    fail "no shared alveare/ timings between %s and %s" baseline_path fresh_path
  else begin
    let geomean = exp (!log_ratio_sum /. float_of_int !compared) in
    if geomean > regression_slack then
      fail
        "suite geomean %.2fx slower than baseline over %d shared timings \
         (limit %.2fx)"
        geomean !compared regression_slack
  end;
  (* Prefilter semantics flags: every workload's hits must be identical
     with prefiltering on and off. *)
  let flags = List.filter (fun (n, _) -> suffix "/hits-identical" n) fresh in
  if flags = [] then fail "no prefilter/.../hits-identical entries in %s" fresh_path;
  List.iter
    (fun (name, v) ->
       if v <> 1.0 then fail "%s = %g: prefiltered scan changed the hits" name v)
    flags;
  (* Plan-executor gates: correctness flags plus the same-run speedup
     floor. hits-identical is already covered by the suffix filter
     above; stats-identical and the speedup are plan-specific. *)
  (match List.assoc_opt "plan/stats-identical" fresh with
   | None -> fail "no plan/stats-identical entry in %s" fresh_path
   | Some 1.0 -> ()
   | Some v ->
     fail "plan/stats-identical = %g: plan executor stats diverged from the \
           legacy interpreter" v);
  (match List.assoc_opt "plan/speedup" fresh with
   | None -> fail "no plan/speedup entry in %s" fresh_path
   | Some s when s < required_plan_speedup ->
     fail "plan/speedup %.2fx below the %.1fx floor (plan vs legacy, same run)"
       s required_plan_speedup
   | Some _ -> ());
  (* Lazy-DFA overlay gates: hits-identical is covered by the suffix
     filter above; stats-identical must hold (the overlay claims bit-
     identical counters, not just spans) and the same-run speedup on
     the dense non-literal corpus must clear its floor. *)
  (match List.assoc_opt "plan/dfa-stats-identical" fresh with
   | None -> fail "no plan/dfa-stats-identical entry in %s" fresh_path
   | Some 1.0 -> ()
   | Some v ->
     fail "plan/dfa-stats-identical = %g: DFA overlay stats diverged from \
           the plain plan executor" v);
  (match List.assoc_opt "plan/dfa-speedup" fresh with
   | None -> fail "no plan/dfa-speedup entry in %s" fresh_path
   | Some s when s < required_dfa_speedup ->
     fail "plan/dfa-speedup %.2fx below the %.1fx floor (overlay vs plan, \
           same run)"
       s required_dfa_speedup
   | Some _ -> ());
  (* One-pass fused ruleset gates: the identity flag
     (ruleset/onepass-hits-identical — tagged hits, per-rule cycles AND
     every aggregate counter; value checked by the suffix filter above)
     must exist, and the same-run speedup of the fused sweep over the
     600-rule per-rule scan must clear its floor. *)
  (match List.assoc_opt "ruleset/onepass-hits-identical" fresh with
   | None -> fail "no ruleset/onepass-hits-identical entry in %s" fresh_path
   | Some _ -> () (* value gated with the other hits-identical flags *));
  (match List.assoc_opt "ruleset/onepass-speedup" fresh with
   | None -> fail "no ruleset/onepass-speedup entry in %s" fresh_path
   | Some s when s < required_onepass_speedup ->
     fail "ruleset/onepass-speedup %.2fx below the %.1fx floor (fused sweep \
           vs per-rule, same run)"
       s required_onepass_speedup
   | Some _ -> ());
  (* Optimiser gates: hits-identical is covered by the suffix filter
     above; the size reduction and the attempts delta are deterministic
     same-run measurements, gated absolutely. *)
  (match List.assoc_opt "opt/reduction" fresh with
   | None -> fail "no opt/reduction entry in %s" fresh_path
   | Some r when r < required_opt_reduction ->
     fail "opt/reduction %.1f%% below the %.0f%% floor (geomean emitted-size \
           reduction, 600-rule sweep)"
       r required_opt_reduction
   | Some _ -> ());
  (match List.assoc_opt "opt/attempts-delta" fresh with
   | None -> fail "no opt/attempts-delta entry in %s" fresh_path
   | Some d when d > 0.0 ->
     fail "opt/attempts-delta %+.0f: the optimised programs started more \
           backtracking attempts than the unoptimised ones"
       d
   | Some _ -> ());
  (* Attempts criterion: at least one workload >= 2x fewer attempts. *)
  let ratios = List.filter (fun (n, _) -> suffix "/attempts-ratio" n) fresh in
  if ratios = [] then fail "no prefilter/.../attempts-ratio entries in %s" fresh_path
  else if not (List.exists (fun (_, r) -> r >= required_attempts_ratio) ratios)
  then
    fail "no workload reaches a %.0fx attempts reduction (best %.2fx)"
      required_attempts_ratio
      (List.fold_left (fun acc (_, r) -> Float.max acc r) 0.0 ratios);
  (* Serving gates: the daemon must agree with the direct scan, and its
     measured latency/throughput must stay inside the wide envelopes. *)
  let server_entries = List.filter (prefix "server/") fresh in
  let server_flags =
    List.filter (fun (n, _) -> suffix "/results-identical" n) server_entries
  in
  if server_flags = [] then
    fail "no server/.../results-identical entries in %s" fresh_path;
  List.iter
    (fun (name, v) ->
       if v <> 1.0 then
         fail "%s = %g: daemon responses diverged from the direct scan" name v)
    server_flags;
  List.iter
    (fun (name, v) ->
       match List.assoc_opt name baseline with
       | None -> ()
       | Some base ->
         if suffix "-ns" name && v > server_latency_slack *. base then
           fail "%s: %.0f ns vs baseline %.0f (%.1fx, limit %.1fx)" name v base
             (v /. base) server_latency_slack
         else if suffix "/throughput-rps" name
                 && v < server_throughput_slack *. base then
           fail "%s: %.1f req/s vs baseline %.1f (below the %.0f%% floor)"
             name v base (100.0 *. server_throughput_slack))
    server_entries;
  (* Extended-dialect gates: the policy-workload scan must exist, its
     served spans must agree with the derivative oracle for every rule
     (ext/hits-identical, value checked by the suffix filter above),
     and the corpus must keep exercising BOTH backends — a mid-end
     change that silently routes everything one way loses half the
     differential coverage. All deterministic (seeded sampler). *)
  (match List.assoc_opt "ext/hits-identical" fresh with
   | None -> fail "no ext/hits-identical entry in %s" fresh_path
   | Some _ -> () (* value gated with the other hits-identical flags *));
  (match List.assoc_opt "ext/lowered-rules" fresh with
   | None -> fail "no ext/lowered-rules entry in %s" fresh_path
   | Some n when n < 1.0 ->
     fail "ext/lowered-rules = %g: no policy rule was rewritten to plain ISA" n
   | Some _ -> ());
  (match List.assoc_opt "ext/derivative-rules" fresh with
   | None -> fail "no ext/derivative-rules entry in %s" fresh_path
   | Some n when n < 1.0 ->
     fail "ext/derivative-rules = %g: no policy rule reached the derivative \
           engine" n
   | Some _ -> ());
  (* Ambiguity-analysis gates: per-rule latency must stay inside the
     absolute admission-control budget, and the class counts over the
     600 workload rules must match the baseline exactly — a
     reclassified serving rule is a behaviour change, not noise. *)
  (match List.assoc_opt "analysis/geomean-ms" fresh with
   | None -> fail "no analysis/geomean-ms entry in %s" fresh_path
   | Some v when v > analysis_ms_budget ->
     fail "analysis/geomean-ms %.3f over the %.1f ms/rule budget" v
       analysis_ms_budget
   | Some _ -> ());
  let class_counts =
    List.filter
      (fun (n, _) ->
         prefix "analysis/" (n, 0.0)
         && (suffix "/linear" n || suffix "/polynomial" n
             || suffix "/exponential" n))
      fresh
  in
  if class_counts = [] then
    fail "no analysis/.../class-count entries in %s" fresh_path;
  List.iter
    (fun (name, v) ->
       match List.assoc_opt name baseline with
       | None -> fail "%s missing from baseline %s" name baseline_path
       | Some base ->
         if v <> base then
           fail "%s = %g vs baseline %g: analysis reclassified workload rules"
             name v base)
    class_counts;
  match !failures with
  | [] ->
    Printf.printf
      "benchcheck OK: %d shared timings, geomean within %d%% of baseline, \
       hits identical, attempts ratios %s\n"
      !compared
      (int_of_float ((regression_slack -. 1.0) *. 100.0))
      (String.concat ", "
         (List.map (fun (n, r) -> Printf.sprintf "%s=%.1fx" n r) ratios))
  | fs ->
    List.iter (fun m -> Printf.eprintf "benchcheck FAIL: %s\n" m) (List.rev fs);
    exit 1
