(* Benchmark harness: one Bechamel test per paper artefact (Table 2,
   Figure 4 per benchmark suite, Figure 5, the scaling sweep and the
   area model), measuring the wall-clock cost of regenerating each one
   at a reduced scale — then a full quick-scale regeneration of every
   table so the run also reproduces the paper's rows (bench_output.txt
   carries both). Timings are also written as machine-readable JSON
   (name -> ns/run) to bench_output.json so the perf trajectory can be
   tracked across PRs.

     dune exec bench/main.exe
     dune exec bench/main.exe -- --workers 4   # parallel regeneration
*)

open Bechamel
open Toolkit
module E = Alveare_harness.Experiments
module A = Alveare_harness.Ablation
module X = Alveare_harness.Extended
module T = Alveare_harness.Table
module Benchmark_suite = Alveare_workloads.Benchmark

let workers = ref 1
let json_path = ref "bench_output.json"

let () =
  Arg.parse
    [ ("--workers", Arg.Set_int workers,
       "N  host domains for the regeneration pass (results identical; \
        wall-clock only)");
      ("--json", Arg.Set_string json_path,
       "FILE  where to write the machine-readable timings (default \
        bench_output.json)") ]
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "bench/main.exe [--workers N] [--json FILE]"

(* A very small evaluation scale so each bechamel iteration is cheap. *)
let bench_scale : E.scale =
  { E.suite_spec =
      (fun kind ->
         { (Benchmark_suite.quick_spec ~seed:13 kind) with
           Benchmark_suite.n_patterns = 4;
           stream_bytes = 256 * 1024 });
    sim_sample_bytes = 4 * 1024;
    gpu_sample_bytes = 1024 }

let table2_test =
  Test.make ~name:"table2-isa-primitives" (Staged.stage (fun () -> E.table2 ()))

let figure4_test kind =
  Test.make
    ~name:(Printf.sprintf "figure4-exec-time-%s" (Benchmark_suite.kind_name kind))
    (Staged.stage (fun () -> E.evaluate_benchmark ~scale:bench_scale kind))

let figure5_test =
  (* Figure 5 = Figure 4 results through the energy model; benchmark the
     efficiency computation on one suite. *)
  Test.make ~name:"figure5-energy-efficiency"
    (Staged.stage (fun () ->
         let r = E.evaluate_benchmark ~scale:bench_scale Benchmark_suite.Powren in
         List.map (fun e -> e.E.avg_efficiency) r.E.engines))

let scaling_test =
  Test.make ~name:"scaling-1-to-10-cores"
    (Staged.stage (fun () ->
         E.scaling ~core_counts:[ 1; 10 ] ~scale:bench_scale
           Benchmark_suite.Protomata))

let area_test =
  Test.make ~name:"area-model" (Staged.stage (fun () -> E.area_table ()))

let tiny_study = { A.n_patterns = 4; sample_bytes = 4 * 1024; seed = 13 }

let counters_test =
  Test.make ~name:"ablation-counters" (Staged.stage (fun () -> A.counters ()))

let fabric_test =
  Test.make ~name:"ablation-fabric"
    (Staged.stage (fun () -> A.fabric ~scale:tiny_study ()))

let breakdown_test =
  Test.make ~name:"extended-energy-breakdown"
    (Staged.stage (fun () -> X.energy_breakdown ~scale:tiny_study ()))

(* Micro-benchmarks of the core library itself, one per pipeline stage. *)
let compile_test =
  Test.make ~name:"micro-compile-snort-rule"
    (Staged.stage (fun () ->
         Alveare_compiler.Compile.compile_exn
           "Host: [a-z0-9.-]{4,24}\\.(com|net|org)"))

let sim_scan_test =
  let program =
    (Alveare_compiler.Compile.compile_exn "ab+c").Alveare_compiler.Compile.program
  in
  let rng = Alveare_workloads.Rng.create 5 in
  let input =
    String.init 16384 (fun _ -> Alveare_workloads.Streams.lowercase_text rng)
  in
  Test.make ~name:"micro-simulate-16KiB-scan"
    (Staged.stage (fun () -> Alveare_arch.Core.find_all program input))

let sim_scan_prefilter_test =
  let c = Alveare_compiler.Compile.compile_exn "ab+c" in
  let rng = Alveare_workloads.Rng.create 5 in
  let input =
    String.init 16384 (fun _ -> Alveare_workloads.Streams.lowercase_text rng)
  in
  Test.make ~name:"micro-simulate-16KiB-scan-prefilter"
    (Staged.stage (fun () ->
         Alveare_arch.Core.find_all
           ~prefilter:c.Alveare_compiler.Compile.prefilter
           c.Alveare_compiler.Compile.program input))

let tests =
  Test.make_grouped ~name:"alveare"
    [ table2_test;
      figure4_test Benchmark_suite.Powren;
      figure4_test Benchmark_suite.Protomata;
      figure4_test Benchmark_suite.Snort;
      figure5_test;
      scaling_test;
      area_test;
      counters_test;
      fabric_test;
      breakdown_test;
      compile_test;
      sim_scan_test;
      sim_scan_prefilter_test ]

let benchmark () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) ~stabilize:false ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results []
  |> List.sort compare

let print_results results =
  Fmt.pr "== Bechamel timings (host wall clock per regeneration) ==@.";
  List.iter
    (fun (name, ols) ->
       match Analyze.OLS.estimates ols with
       | Some [ run_ns ] ->
         let pretty =
           if run_ns >= 1e9 then Printf.sprintf "%8.3f s " (run_ns /. 1e9)
           else if run_ns >= 1e6 then Printf.sprintf "%8.3f ms" (run_ns /. 1e6)
           else Printf.sprintf "%8.3f us" (run_ns /. 1e3)
         in
         Fmt.pr "  %-42s %s/run@." name pretty
       | Some _ | None -> Fmt.pr "  %-42s (no estimate)@." name)
    results;
  Fmt.pr "@."

(* Machine-readable sibling of the text report: a flat {"name": value}
   map. Bechamel timings land as alveare/... -> ns/run; the prefilter
   ablation adds prefilter/... counters and seconds. Names are
   identifiers, so escaping quotes and backslashes covers the whole JSON
   string grammar here. *)
let timing_entries results =
  List.filter_map
    (fun (name, ols) ->
       match Analyze.OLS.estimates ols with
       | Some [ run_ns ] -> Some (name, run_ns)
       | Some _ | None -> None)
    results

let write_json path entries =
  let escape s =
    let buf = Buffer.create (String.length s) in
    String.iter
      (function
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf
  in
  let oc = open_out path in
  let entries =
    List.map
      (fun (name, v) -> Printf.sprintf "  \"%s\": %.3f" (escape name) v)
      entries
  in
  output_string oc "{\n";
  output_string oc (String.concat ",\n" entries);
  output_string oc "\n}\n";
  close_out oc;
  Fmt.pr "wrote %s (%d entries)@.@." path (List.length entries)

(* --- Plan ablation ------------------------------------------------------

   The pre-decoded plan executor against the legacy instruction-at-a-
   time interpreter on the same 16 KiB scan the micro benchmark uses:
   wall time per scan for both paths, the speedup, minor-heap words
   allocated per scan (the reusable scratch should make the plan path
   allocation-free in the inner loop), and identity flags over the hit
   list and the full stats record — which must never differ; the
   compare gate fails the build if they do, or if the speedup falls
   under its floor. *)

module Core = Alveare_arch.Core
module Plan = Alveare_arch.Plan

let plan_iters = 100

let plan_ablation () : (string * float) list =
  let c = Alveare_compiler.Compile.compile_exn "ab+c" in
  let program = c.Alveare_compiler.Compile.program in
  let plan = c.Alveare_compiler.Compile.plan in
  let rng = Alveare_workloads.Rng.create 5 in
  let input =
    String.init 16384 (fun _ -> Alveare_workloads.Streams.lowercase_text rng)
  in
  let scratch = Plan.create_scratch () in
  let run_plan () = Core.find_all ~plan ~scratch program input in
  let run_legacy () = Core.find_all ~use_plan:false program input in
  (* correctness flags from one instrumented scan per path *)
  let plan_stats = Core.fresh_stats () in
  let plan_hits = Core.find_all ~stats:plan_stats ~plan ~scratch program input in
  let legacy_stats = Core.fresh_stats () in
  let legacy_hits =
    Core.find_all ~stats:legacy_stats ~use_plan:false program input
  in
  let hits_identical = plan_hits = legacy_hits in
  let stats_identical = plan_stats = legacy_stats in
  let time f =
    ignore (f ()); (* warm *)
    let t0 = Unix.gettimeofday () in
    for _ = 1 to plan_iters do
      ignore (f ())
    done;
    (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int plan_iters
  in
  let minor_words f =
    ignore (f ());
    let w0 = Gc.minor_words () in
    ignore (f ());
    Gc.minor_words () -. w0
  in
  let plan_ns = time run_plan in
  let legacy_ns = time run_legacy in
  let plan_mw = minor_words run_plan in
  let legacy_mw = minor_words run_legacy in
  let speedup = legacy_ns /. Float.max 1.0 plan_ns in
  Fmt.pr "== Plan ablation (16 KiB scan, pattern \"ab+c\") ==@.";
  Fmt.pr
    "  legacy %.1f us/scan, plan %.1f us/scan (%.2fx), minor words \
     %.0f -> %.0f, hits %s, stats %s@.@."
    (legacy_ns /. 1e3) (plan_ns /. 1e3) speedup legacy_mw plan_mw
    (if hits_identical then "identical" else "DIVERGED")
    (if stats_identical then "identical" else "DIVERGED");
  [ ("plan/legacy-ns", legacy_ns);
    ("plan/plan-ns", plan_ns);
    ("plan/speedup", speedup);
    ("plan/minor-words-legacy", legacy_mw);
    ("plan/minor-words-plan", plan_mw);
    ("plan/hits-identical", if hits_identical then 1.0 else 0.0);
    ("plan/stats-identical", if stats_identical then 1.0 else 0.0) ]

(* --- Lazy-DFA overlay ablation ------------------------------------------

   The overlay executor against the plain plan path on a dense
   backtracking-heavy scan: an 8-way alternation under an unbounded
   counted repeat, over a 64 KiB corpus drawn from the repeat's
   alphabet plus a rare terminator byte, so the leading op admits no
   skip loop, every offset runs a real attempt, and attempts run long
   (the workload the table-per-byte path is for). Wall time per scan both ways, the same-run speedup, cache
   shape (states/transitions built), and identity flags over the hit
   list and the full stats record — the compare gate fails the build on
   any divergence or a speedup under its floor. *)

module Dfa = Alveare_arch.Dfa_overlay

let dfa_iters = 10

let dfa_pattern =
  "([a-b]|[c-d]|[e-f]|[g-h]|[i-j]|[k-l]|[m-n]|[o-p]){8,}[q-z]"

let dfa_ablation () : (string * float) list =
  let c = Alveare_compiler.Compile.compile_exn dfa_pattern in
  let program = c.Alveare_compiler.Compile.program in
  let plan = c.Alveare_compiler.Compile.plan in
  let fam =
    match c.Alveare_compiler.Compile.dfa with
    | Some fam -> fam
    | None -> failwith "dfa_ablation: pattern unexpectedly not covered"
  in
  let rng = Alveare_workloads.Rng.create 11 in
  (* one 'q' per 33 alphabet draws: runs of repeat-alphabet bytes
     average ~32 long, so attempts are long and per-byte execution
     cost dominates the shared scan-loop overhead *)
  let alphabet = "abcdefghijklmnopabcdefghijklmnopq" in
  let input =
    String.init 65536 (fun _ -> Alveare_workloads.Rng.char_of rng alphabet)
  in
  let scratch = Alveare_arch.Plan.create_scratch () in
  let run_dfa () = Core.find_all ~plan ~dfa:fam ~scratch program input in
  let run_plan () = Core.find_all ~plan ~scratch program input in
  (* correctness flags from one instrumented scan per path *)
  let dfa_stats = Core.fresh_stats () in
  let dfa_hits =
    Core.find_all ~stats:dfa_stats ~plan ~dfa:fam ~scratch program input
  in
  let plan_stats = Core.fresh_stats () in
  let plan_hits = Core.find_all ~stats:plan_stats ~plan ~scratch program input in
  let hits_identical = dfa_hits = plan_hits in
  let stats_identical = dfa_stats = plan_stats in
  (* Interleaved best-of-N: the speedup below is a hard compare gate,
     and a single contiguous timing window per path is exposed to
     scheduler noise on a shared machine. Alternating short passes puts
     both paths under the same load, the minor collection before each
     pass keeps GC debt from the span lists out of the window, and the
     min over passes is each path's unloaded cost. The first warm calls
     also finish building the transition table. *)
  ignore (run_dfa ());
  ignore (run_plan ());
  let one_pass f =
    Gc.minor ();
    let t0 = Unix.gettimeofday () in
    for _ = 1 to dfa_iters do
      ignore (f ())
    done;
    (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int dfa_iters
  in
  let dfa_best = ref infinity and plan_best = ref infinity in
  for _ = 1 to 6 do
    let d = one_pass run_dfa in
    let p = one_pass run_plan in
    if d < !dfa_best then dfa_best := d;
    if p < !plan_best then plan_best := p
  done;
  let dfa_ns = !dfa_best in
  let plan_ns = !plan_best in
  let speedup = plan_ns /. Float.max 1.0 dfa_ns in
  let cache = Dfa.family_stats fam in
  Fmt.pr "== Lazy-DFA overlay ablation (64 KiB dense scan, %s) ==@."
    dfa_pattern;
  Fmt.pr
    "  plan %.1f us/scan, dfa %.1f us/scan (%.2fx), %d states / %d \
     transitions built, hits %s, stats %s@.@."
    (plan_ns /. 1e3) (dfa_ns /. 1e3) speedup cache.Dfa.states_built
    cache.Dfa.transitions_built
    (if hits_identical then "identical" else "DIVERGED")
    (if stats_identical then "identical" else "DIVERGED");
  [ ("plan/dfa-plan-ns", plan_ns);
    ("plan/dfa-ns", dfa_ns);
    ("plan/dfa-speedup", speedup);
    ("plan/dfa-states-built", float_of_int cache.Dfa.states_built);
    ("plan/dfa-transitions-built", float_of_int cache.Dfa.transitions_built);
    ("plan/dfa-hits-identical", if hits_identical then 1.0 else 0.0);
    ("plan/dfa-stats-identical", if stats_identical then 1.0 else 0.0) ]

(* --- Prefilter ablation -------------------------------------------------

   The headline numbers for the software prefilter: scan a witness-
   planted stream through a sampled PowerEN and Snort ruleset with
   start-of-match prefiltering on and off, and record attempts started,
   offsets pruned, host wall-clock, and whether the match reports are
   identical (they must be — the prefilter is semantics-preserving).
   The counters are deterministic (seeded samplers, cycle-level
   simulator); only the seconds are host-dependent. *)

module Ruleset = Alveare_compiler.Ruleset
module Streams = Alveare_workloads.Streams
module Rng = Alveare_workloads.Rng

let ablation_rules = 16
let ablation_bytes = 128 * 1024

let prefilter_ablation () : (string * float) list =
  let workloads =
    [ ("powren", Alveare_workloads.Powren.patterns (Rng.create 21) ablation_rules,
       Streams.lowercase_text);
      ("snort", Alveare_workloads.Snort.patterns (Rng.create 22) ablation_rules,
       Streams.network) ]
  in
  Fmt.pr "== Prefilter ablation (ruleset scan, %d rules, %d KiB) ==@."
    ablation_rules (ablation_bytes / 1024);
  List.concat_map
    (fun (name, patterns, background) ->
       let specs =
         List.mapi (fun i p -> (Printf.sprintf "%s-%d" name i, p)) patterns
       in
       let rs = Ruleset.compile_exn specs in
       let asts =
         List.map
           (fun (r : Ruleset.compiled_rule) ->
              r.Ruleset.compiled.Alveare_compiler.Compile.ast)
           (Array.to_list rs.Ruleset.rules)
       in
       let stream =
         Streams.generate ~rng:(Rng.create 23) ~size:ablation_bytes ~background
           ~plant:(Streams.plant_of_patterns ~asts) ()
       in
       let time f =
         let t0 = Sys.time () in
         let r = f () in
         (r, Sys.time () -. t0)
       in
       let on, on_s = time (fun () -> Ruleset.scan rs stream.Streams.data) in
       let off, off_s =
         time (fun () -> Ruleset.scan ~prefilter:false rs stream.Streams.data)
       in
       let identical = on.Ruleset.hits = off.Ruleset.hits in
       let ratio den num = float_of_int den /. float_of_int (max 1 num) in
       Fmt.pr
         "  %-8s attempts %d -> %d (%.1fx fewer), pruned %d, AC rules %d/%d, \
          wall %.3fs -> %.3fs (%.2fx), hits %s (%d)@."
         name off.Ruleset.total_attempts on.Ruleset.total_attempts
         (ratio off.Ruleset.total_attempts on.Ruleset.total_attempts)
         on.Ruleset.total_offsets_pruned on.Ruleset.prefiltered_rules
         (Ruleset.size rs) off_s on_s
         (off_s /. Float.max 1e-9 on_s)
         (if identical then "identical" else "DIVERGED")
         (List.length on.Ruleset.hits);
       let k fmt = Printf.sprintf ("prefilter/%s/" ^^ fmt) name in
       [ (k "attempts-off", float_of_int off.Ruleset.total_attempts);
         (k "attempts-on", float_of_int on.Ruleset.total_attempts);
         (k "attempts-ratio",
          ratio off.Ruleset.total_attempts on.Ruleset.total_attempts);
         (k "offsets-scanned", float_of_int on.Ruleset.total_offsets_scanned);
         (k "offsets-pruned-on", float_of_int on.Ruleset.total_offsets_pruned);
         (k "offsets-pruned-off", float_of_int off.Ruleset.total_offsets_pruned);
         (k "prefiltered-rules", float_of_int on.Ruleset.prefiltered_rules);
         (k "seconds-off", off_s);
         (k "seconds-on", on_s);
         (k "speedup", off_s /. Float.max 1e-9 on_s);
         (k "hits", float_of_int (List.length on.Ruleset.hits));
         (k "hits-identical", if identical then 1.0 else 0.0) ])
    workloads

(* --- Optimiser ablation -------------------------------------------------

   The mid-end rewrite optimiser over the full 600-rule lint-sweep
   corpus (the three samplers at seeds 11/12/13, 200 rules each):
   emitted ISA words with the optimiser on and off and the geomean
   per-rule size reduction, gated at >= 10% in compare.ml. A scan
   subset then runs both compilations of each rule over a witness-
   planted stream: the hit lists must be bit-identical and the total
   backtracking attempts must not rise (the optimiser may only convert
   attempts into cheap vector-unit scan rejections), gated as
   opt/hits-identical and opt/attempts-delta <= 0. Every number here
   is deterministic (seeded samplers, cycle-level simulator) — nothing
   is host-dependent. *)

let opt_scan_rules = 12
let opt_scan_bytes = 64 * 1024

let opt_ablation () : (string * float) list =
  let workloads =
    [ ("powren",
       Alveare_workloads.Powren.patterns (Rng.create 11) 200,
       Streams.lowercase_text);
      ("protomata",
       Alveare_workloads.Protomata.patterns (Rng.create 12) 200,
       Streams.protein);
      ("snort",
       Alveare_workloads.Snort.patterns (Rng.create 13) 200,
       Streams.network) ]
  in
  Fmt.pr
    "== Optimiser ablation (600-rule sweep, %d-rule scan subsets of %d KiB) ==@."
    opt_scan_rules (opt_scan_bytes / 1024);
  let grand_before = ref 0 and grand_after = ref 0 in
  let grand_log = ref 0.0 and grand_n = ref 0 in
  let attempts_delta = ref 0 and hits_identical = ref true in
  let per_workload =
    List.concat_map
      (fun (name, patterns, background) ->
         let compiled =
           List.map
             (fun p ->
                ( Alveare_compiler.Compile.compile_exn ~optimize:true p,
                  Alveare_compiler.Compile.compile_exn ~optimize:false p ))
             patterns
         in
         let before = ref 0 and after = ref 0 in
         let lg = ref 0.0 and n = ref 0 in
         List.iter
           (fun (o, r) ->
              let so = Alveare_compiler.Compile.code_size o in
              let sr = Alveare_compiler.Compile.code_size r in
              before := !before + sr;
              after := !after + so;
              lg := !lg +. log (float_of_int sr /. float_of_int so);
              incr n)
           compiled;
         grand_before := !grand_before + !before;
         grand_after := !grand_after + !after;
         grand_log := !grand_log +. !lg;
         grand_n := !grand_n + !n;
         let reduction =
           (exp (!lg /. float_of_int (max 1 !n)) -. 1.0) *. 100.0
         in
         (* scan subset: both compilations over one planted stream *)
         let subset = List.filteri (fun i _ -> i < opt_scan_rules) compiled in
         let asts =
           List.map
             (fun ((_, r) : Alveare_compiler.Compile.compiled * _) ->
                r.Alveare_compiler.Compile.ast)
             subset
         in
         let stream =
           Streams.generate ~rng:(Rng.create 25) ~size:opt_scan_bytes
             ~background ~plant:(Streams.plant_of_patterns ~asts) ()
         in
         let delta = ref 0 in
         List.iter
           (fun (o, r) ->
              let scan (c : Alveare_compiler.Compile.compiled) =
                let stats = Core.fresh_stats () in
                let spans =
                  Core.find_all ~stats ~plan:c.Alveare_compiler.Compile.plan
                    ~prefilter:c.Alveare_compiler.Compile.prefilter
                    c.Alveare_compiler.Compile.program stream.Streams.data
                in
                (spans, stats.Core.attempts)
              in
              let os, oa = scan o in
              let rs, ra = scan r in
              if os <> rs then hits_identical := false;
              delta := !delta + (oa - ra))
           subset;
         attempts_delta := !attempts_delta + !delta;
         Fmt.pr
           "  %-10s %4d -> %4d words (geomean reduction %.1f%%), scan \
            attempts delta %+d@."
           name !before !after reduction !delta;
         let k fmt = Printf.sprintf ("opt/%s/" ^^ fmt) name in
         [ (k "isa-words-before", float_of_int !before);
           (k "isa-words-after", float_of_int !after);
           (k "reduction", reduction);
           (k "attempts-delta", float_of_int !delta) ])
      workloads
  in
  let reduction =
    (exp (!grand_log /. float_of_int (max 1 !grand_n)) -. 1.0) *. 100.0
  in
  Fmt.pr
    "  %-10s %4d -> %4d words (geomean reduction %.1f%%), attempts delta \
     %+d, hits %s@.@."
    "total" !grand_before !grand_after reduction !attempts_delta
    (if !hits_identical then "identical" else "DIVERGED");
  per_workload
  @ [ ("opt/isa-words-before", float_of_int !grand_before);
      ("opt/isa-words-after", float_of_int !grand_after);
      ("opt/reduction", reduction);
      ("opt/attempts-delta", float_of_int !attempts_delta);
      ("opt/hits-identical", if !hits_identical then 1.0 else 0.0) ]

(* --- One-pass fused ruleset ablation ------------------------------------

   The headline number for the fused multi-pattern engine: the full
   600-rule lint-sweep corpus (the three samplers at seeds 11/12/13,
   200 rules each) as ONE ruleset over one witness-planted stream —
   host wall time per scan with the fused sweep on and off, the
   same-run speedup (gated >= 2x in compare.ml, immune to machine
   drift), and an identity flag over the tagged hits, the per-rule
   cycles and every aggregate counter (the fused engine claims
   bit-identity, not just equal spans; any divergence fails the
   build).

   The stream is COLD traffic: background bytes drawn from printable
   punctuation outside every non-covered rule's first set and every
   extracted literal, with witnesses planted for a subset of each
   workload's rules (hundreds of real hits, so both match and miss
   paths run). Cold traffic is the regime the shared sweep exists
   for — the DPI common case where most bytes match nothing and scan
   cost dominates: the per-rule path walks the stream once per
   non-covered rule, the fused path walks it once in total. On warm
   workload-alphabet streams both paths are attempt-bound at identical
   candidate sets, so wall time converges by construction — that
   regime's bit-identity is pinned by the @onepasscheck battery, which
   scans the sampler backgrounds themselves. Timing is interleaved
   best-of-N like the overlay ablation: alternating passes put both
   paths under the same machine load, and the min over passes is each
   path's unloaded cost. *)

let onepass_rules_per_workload = 200
let onepass_bytes_per_workload = 128 * 1024
let onepass_planted = 24 (* witnesses per workload segment *)

(* every byte outside the 600 rules' non-literal first sets and
   extracted literals (verified by construction in the probe that
   chose it: 186 of 256 byte values qualify; these are the printable
   ones) *)
let onepass_cold_bytes = "!\"#$%&'()*+,;<>?@[]^`{|}~\\"

let onepass_ablation () : (string * float) list =
  let workloads =
    [ ("powren",
       Alveare_workloads.Powren.patterns (Rng.create 11)
         onepass_rules_per_workload,
       Streams.lowercase_text);
      ("protomata",
       Alveare_workloads.Protomata.patterns (Rng.create 12)
         onepass_rules_per_workload,
       Streams.protein);
      ("snort",
       Alveare_workloads.Snort.patterns (Rng.create 13)
         onepass_rules_per_workload,
       Streams.network) ]
  in
  let specs =
    List.concat_map
      (fun (name, patterns, _) ->
         List.mapi (fun i p -> (Printf.sprintf "%s-%d" name i, p)) patterns)
      workloads
  in
  let rs = Ruleset.compile_exn specs in
  (* one cold stream segment per workload, each planted with witnesses
     of a subset of that workload's own rules, concatenated *)
  let cold rng = Rng.char_of rng onepass_cold_bytes in
  let input =
    String.concat ""
      (List.map
         (fun (_, patterns, _) ->
            let asts =
              List.filteri (fun i _ -> i < onepass_planted) patterns
              |> List.map (fun p ->
                     (Alveare_compiler.Compile.compile_exn p)
                       .Alveare_compiler.Compile.ast)
            in
            (Streams.generate ~rng:(Rng.create 26)
               ~size:onepass_bytes_per_workload ~background:cold
               ~plant:(Streams.plant_of_patterns ~asts) ())
              .Streams.data)
         workloads)
  in
  let run_onepass () = Ruleset.scan ~onepass:true rs input in
  let run_per_rule () = Ruleset.scan ~onepass:false rs input in
  let on = run_onepass () in
  let off = run_per_rule () in
  let tagged (r : Ruleset.report) =
    List.map
      (fun (h : Ruleset.hit) -> (h.Ruleset.hit_rule.Ruleset.id, h.Ruleset.span))
      r.Ruleset.hits
  in
  let identity (r : Ruleset.report) =
    ( tagged r, r.Ruleset.per_rule_cycles, r.Ruleset.total_wall_cycles,
      r.Ruleset.total_attempts, r.Ruleset.total_offsets_scanned,
      r.Ruleset.total_offsets_pruned, r.Ruleset.prefiltered_rules )
  in
  let hits_identical = identity on = identity off in
  let one_pass f =
    Gc.minor ();
    let t0 = Unix.gettimeofday () in
    ignore (f ());
    (Unix.gettimeofday () -. t0) *. 1e9
  in
  let on_best = ref infinity and off_best = ref infinity in
  for _ = 1 to 4 do
    let a = one_pass run_onepass in
    let b = one_pass run_per_rule in
    if a < !on_best then on_best := a;
    if b < !off_best then off_best := b
  done;
  let onepass_ns = !on_best in
  let per_rule_ns = !off_best in
  let speedup = per_rule_ns /. Float.max 1.0 onepass_ns in
  Fmt.pr
    "== One-pass fused ruleset ablation (%d rules, %d KiB stream) ==@."
    (Ruleset.size rs)
    (String.length input / 1024);
  Fmt.pr
    "  per-rule %.2f ms/scan, fused %.2f ms/scan (%.2fx), report %s (%d \
     hits)@.@."
    (per_rule_ns /. 1e6) (onepass_ns /. 1e6) speedup
    (if hits_identical then "bit-identical" else "DIVERGED")
    (List.length on.Ruleset.hits);
  [ ("ruleset/onepass-per-rule-ns", per_rule_ns);
    ("ruleset/onepass-onepass-ns", onepass_ns);
    ("ruleset/onepass-speedup", speedup);
    ("ruleset/onepass-hits-identical", if hits_identical then 1.0 else 0.0) ]

(* --- Serving-path benchmark ---------------------------------------------

   End-to-end cost of the daemon: an in-process server on a /tmp Unix
   socket, [serving_clients] client threads each issuing
   [serving_requests] ruleset scans of 16 KiB stream slices through the
   real wire protocol, reader threads and worker pool. Latencies are the
   client-observed round trips; every response is checked against the
   direct Ruleset.scan of the same slice, so the benchmark doubles as a
   correctness run (server/snort/results-identical gates it in
   compare.ml, alongside the 2x latency and half-throughput envelopes). *)

module Server = Alveare_server.Server
module Sclient = Alveare_server.Client
module P = Alveare_server.Protocol

let serving_clients = 4
let serving_requests = 12
let serving_slice = 16 * 1024

let serving_bench () : (string * float) list =
  let patterns =
    Alveare_workloads.Snort.patterns (Rng.create 22) ablation_rules
  in
  let rules = List.mapi (fun i p -> (Printf.sprintf "snort-%d" i, p)) patterns in
  let rs = Ruleset.compile_exn rules in
  let asts =
    List.map
      (fun (r : Ruleset.compiled_rule) ->
         r.Ruleset.compiled.Alveare_compiler.Compile.ast)
      (Array.to_list rs.Ruleset.rules)
  in
  let stream =
    Streams.generate ~rng:(Rng.create 24) ~size:(256 * 1024)
      ~background:Streams.network ~plant:(Streams.plant_of_patterns ~asts) ()
  in
  let slices =
    let span = String.length stream.Streams.data - serving_slice in
    List.init serving_requests (fun i ->
        String.sub stream.Streams.data
          (i * span / (max 1 (serving_requests - 1)))
          serving_slice)
  in
  (* ground truth per slice, straight through the library *)
  let expected =
    List.map
      (fun slice ->
         let report = Ruleset.scan rs slice in
         List.map
           (fun (h : Ruleset.hit) ->
              ( h.Ruleset.hit_rule.Ruleset.id,
                h.Ruleset.hit_rule.Ruleset.tag,
                h.Ruleset.span.Alveare_engine.Semantics.start,
                h.Ruleset.span.Alveare_engine.Semantics.stop ))
           report.Ruleset.hits)
      slices
  in
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "alveare-bench-%d.sock" (Unix.getpid ()))
  in
  let server =
    Server.start
      { Server.default_config with
        Server.addr = Server.Unix_sock path;
        workers = 4;
        queue_capacity = 256 }
  in
  let latencies = Array.make (serving_clients * serving_requests) 0.0 in
  let identical = Atomic.make true in
  let total_hits = Atomic.make 0 in
  let client ci () =
    let c = Sclient.connect (Server.Unix_sock path) in
    Fun.protect ~finally:(fun () -> Sclient.close c) (fun () ->
        List.iteri
          (fun i (slice, want) ->
             let t0 = Unix.gettimeofday () in
             (match
                Sclient.ruleset_scan ~allow_risky:true c ~rules ~input:slice
              with
             | Ok (P.Ruleset_matches { hits; _ }) ->
               ignore (Atomic.fetch_and_add total_hits (List.length hits));
               if hits <> want then Atomic.set identical false
             | Ok _ | Error _ -> Atomic.set identical false);
             latencies.((ci * serving_requests) + i) <-
               Unix.gettimeofday () -. t0)
          (List.combine slices expected))
  in
  let t0 = Unix.gettimeofday () in
  let threads =
    List.init serving_clients (fun ci -> Thread.create (client ci) ())
  in
  List.iter Thread.join threads;
  let wall = Unix.gettimeofday () -. t0 in
  Server.stop server;
  let n = Array.length latencies in
  Array.sort compare latencies;
  let pct p = latencies.(min (n - 1) (int_of_float (p *. float_of_int n))) in
  let p50 = pct 0.50 and p99 = pct 0.99 in
  let rps = float_of_int n /. Float.max 1e-9 wall in
  Fmt.pr
    "== Serving path (%d clients x %d ruleset scans of %d KiB, Unix socket) ==@."
    serving_clients serving_requests (serving_slice / 1024);
  Fmt.pr
    "  throughput %.1f req/s, p50 %.2f ms, p99 %.2f ms, hits %d, results %s@.@."
    rps (p50 *. 1e3) (p99 *. 1e3) (Atomic.get total_hits)
    (if Atomic.get identical then "identical" else "DIVERGED");
  [ ("server/snort/throughput-rps", rps);
    ("server/snort/p50-ns", p50 *. 1e9);
    ("server/snort/p99-ns", p99 *. 1e9);
    ("server/snort/requests", float_of_int n);
    ("server/snort/hits", float_of_int (Atomic.get total_hits));
    ("server/snort/results-identical",
     if Atomic.get identical then 1.0 else 0.0) ]

(* --- Ambiguity-analysis bench -------------------------------------------

   Per-rule latency of the precise ambiguity analysis over the three
   workload samplers (the same 600 rules the @ambigcheck sweep pins),
   plus the class counts, which the compare gate holds exactly equal to
   the baseline: an analysis change that reclassifies a serving rule
   must be deliberate, not drift. The geomean per-rule latency is gated
   absolutely (admission-control budget), not relative to baseline. *)

let analysis_bench () : (string * float) list =
  let samplers =
    [ ("powren",
       Alveare_workloads.Powren.patterns (Alveare_workloads.Rng.create 11) 200);
      ("protomata",
       Alveare_workloads.Protomata.patterns
         (Alveare_workloads.Rng.create 12) 200);
      ("snort",
       Alveare_workloads.Snort.patterns (Alveare_workloads.Rng.create 13) 200) ]
  in
  Fmt.pr "== Ambiguity analysis (per-rule latency, 3 x 200 workload rules) ==@.";
  let log_sum = ref 0.0 in
  let entries =
    List.concat_map
      (fun (name, pats) ->
         let linear = ref 0 and poly = ref 0 and expo = ref 0 in
         let t0 = Unix.gettimeofday () in
         List.iter
           (fun p ->
              match Alveare_analysis.Ambiguity.pattern p with
              | Error _ -> ()
              | Ok t ->
                (match t.Alveare_analysis.Ambiguity.verdict with
                 | Alveare_analysis.Ambiguity.Linear -> incr linear
                 | Alveare_analysis.Ambiguity.Polynomial _ -> incr poly
                 | Alveare_analysis.Ambiguity.Exponential -> incr expo))
           pats;
         let wall = Unix.gettimeofday () -. t0 in
         let ms_per_rule = wall *. 1e3 /. float_of_int (List.length pats) in
         log_sum := !log_sum +. log (Float.max 1e-9 ms_per_rule);
         Fmt.pr "  %-10s %.3f ms/rule (linear %d, polynomial %d, exponential %d)@."
           name ms_per_rule !linear !poly !expo;
         [ (Printf.sprintf "analysis/%s/ms-per-rule" name, ms_per_rule);
           (Printf.sprintf "analysis/%s/linear" name, float_of_int !linear);
           (Printf.sprintf "analysis/%s/polynomial" name, float_of_int !poly);
           (Printf.sprintf "analysis/%s/exponential" name, float_of_int !expo) ])
      samplers
  in
  let geomean = exp (!log_sum /. float_of_int (List.length samplers)) in
  Fmt.pr "  geomean    %.3f ms/rule@.@." geomean;
  entries @ [ ("analysis/geomean-ms", geomean) ]

(* --- Extended-dialect bench ---------------------------------------------

   The policy workload (skeleton-and-constraint conjunctions,
   complement deny rules, lookaround guards) through both execution
   backends over a witness-planted stream. Per rule the mid-end either
   rewrites the pattern to plain ISA (finite conjunctions) or routes it
   to the derivative engine; the backend split and the span agreement
   of every served rule against a fresh derivative oracle are
   deterministic and gated in compare.ml (ext/hits-identical, plus at
   least one rule on each backend so the corpus keeps exercising both).
   The timings are informational: the lowered path runs on the
   cycle-level simulator while the oracle is a host matcher, so the
   ratio is an apples-to-oranges wall-clock observation, not a gate. *)

module Deriv = Alveare_derivative.Engine
module Compile = Alveare_compiler.Compile

let ext_rules = 16
(* 16 KiB, not the 64-128 KiB the other ablations use: the derivative
   oracle is worst-case linear PER START POSITION, so the full-corpus
   sweep grows quadratically with the stream and already dominates the
   bench lane's wall clock at this size. *)
let ext_bytes = 16 * 1024
let ext_iters = 3

let ext_bench () : (string * float) list =
  let patterns = Alveare_workloads.Policy.patterns (Rng.create 31) ext_rules in
  let compiled = List.map (Compile.compile_exn ~extended:true) patterns in
  let asts = List.map (fun c -> c.Compile.ast) compiled in
  let stream =
    Streams.generate ~rng:(Rng.create 32) ~size:ext_bytes
      ~background:Alveare_workloads.Policy.background
      ~plant:(Streams.plant_of_patterns ~asts) ()
  in
  let data = stream.Streams.data in
  let served c =
    match c.Compile.backend with
    | Compile.Derivative eng -> Deriv.find_all eng data
    | Compile.Isa | Compile.Isa_lowered ->
      Core.find_all ~plan:c.Compile.plan ~prefilter:c.Compile.prefilter
        c.Compile.program data
  in
  let lowered, routed =
    List.partition
      (fun c ->
         match c.Compile.backend with
         | Compile.Derivative _ -> false
         | Compile.Isa | Compile.Isa_lowered -> true)
      compiled
  in
  (* correctness: every rule's served spans equal a fresh oracle's *)
  let oracles = List.map Deriv.of_ast asts in
  let hits = ref 0 and identical = ref true in
  List.iter2
    (fun c oracle ->
       let s = served c in
       hits := !hits + List.length s;
       if s <> Deriv.find_all oracle data then identical := false)
    compiled oracles;
  let time f =
    ignore (f ());
    let t0 = Unix.gettimeofday () in
    for _ = 1 to ext_iters do
      ignore (f ())
    done;
    (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int ext_iters
  in
  let deriv_ns =
    time (fun () -> List.map (fun o -> Deriv.find_all o data) oracles)
  in
  let lowered_ns = time (fun () -> List.map served lowered) in
  let lowered_oracles = List.map (fun c -> Deriv.of_ast c.Compile.ast) lowered in
  let deriv_lowered_ns =
    time (fun () -> List.map (fun o -> Deriv.find_all o data) lowered_oracles)
  in
  let speedup = deriv_lowered_ns /. Float.max 1.0 lowered_ns in
  Fmt.pr "== Extended dialect (policy workload, %d rules, %d KiB stream) ==@."
    ext_rules (ext_bytes / 1024);
  Fmt.pr
    "  %d rules lowered to ISA, %d on the derivative engine; oracle sweep \
     %.1f us, lowered scan %.1f us (simulated; %.2fx vs host oracle on the \
     same subset), hits %s (%d)@.@."
    (List.length lowered) (List.length routed) (deriv_ns /. 1e3)
    (lowered_ns /. 1e3) speedup
    (if !identical then "identical" else "DIVERGED")
    !hits;
  [ ("ext/rules", float_of_int ext_rules);
    ("ext/lowered-rules", float_of_int (List.length lowered));
    ("ext/derivative-rules", float_of_int (List.length routed));
    ("ext/deriv-ns", deriv_ns);
    ("ext/lowered-ns", lowered_ns);
    ("ext/deriv-lowered-ns", deriv_lowered_ns);
    ("ext/speedup", speedup);
    ("ext/hits", float_of_int !hits);
    ("ext/hits-identical", if !identical then 1.0 else 0.0) ]

let () =
  let results = benchmark () in
  print_results results;
  let plan = plan_ablation () in
  let dfa = dfa_ablation () in
  let ablation = prefilter_ablation () in
  let opt = opt_ablation () in
  let onepass = onepass_ablation () in
  let serving = serving_bench () in
  let analysis = analysis_bench () in
  let ext = ext_bench () in
  write_json !json_path
    (timing_entries results @ plan @ dfa @ ablation @ opt @ onepass @ serving
     @ analysis @ ext);
  (* Regenerate every paper artefact at quick scale. *)
  let workers = !workers in
  let scale = E.quick_scale () in
  T.print (E.table2_table (E.table2 ()));
  let results = E.evaluate ~workers ~scale () in
  T.print (E.figure4_table results);
  T.print (E.figure5_table results);
  let scaling =
    List.map
      (fun kind -> E.scaling ~workers ~scale kind)
      Benchmark_suite.all_kinds
  in
  T.print (E.scaling_table scaling);
  T.print (E.area_table ());
  T.print (A.counters_table (A.counters ()));
  T.print (A.fabric_table (A.fabric ()));
  T.print (A.vector_width_table (A.vector_width ()));
  T.print (A.optimizer_table (A.optimizer_study ()));
  T.print (A.fusion_table (A.fusion_study ()));
  T.print (X.energy_breakdown_table (X.energy_breakdown ()));
  T.print (X.csa_table (X.csa_comparison ()));
  T.print (X.capacity_table (X.capacity ()))
